package netstack

import (
	"testing"

	"repro/internal/fault"
	"repro/internal/osprofile"
	"repro/internal/sim"
)

func netInjector(t *testing.T, plan *fault.Plan, seed uint64) *fault.NetInjector {
	t.Helper()
	if err := plan.Validate(); err != nil {
		t.Fatal(err)
	}
	inj := fault.New(plan, sim.NewRNG(seed))
	if inj.Net == nil {
		t.Fatal("plan built no network injector")
	}
	return inj.Net
}

// A faulted TCP transfer keeps the time identity exact: SegTime + AckTime
// + SwitchTime + FaultTime equals elapsed to the nanosecond, the
// unfaulted ledger terms match a clean run of the same transfer, and the
// whole thing replays bit-identically from the same seed.
func TestTCPFaultedTimeIdentity(t *testing.T) {
	plan := &fault.Plan{Net: fault.NetFaults{
		TCPSegLossProb: 0.05,
		AckDelayUs:     200,
		RTOMs:          50,
		BackoffFactor:  2,
		MaxBackoffMs:   800,
	}}
	const size = 1 << 20
	for _, p := range osprofile.Paper() {
		t.Run(p.Name, func(t *testing.T) {
			clean := MustTCP(p)
			cleanElapsed, cleanStats := clean.TransferObserved(size, nil)

			run := func(seed uint64) (sim.Duration, TCPStats) {
				tcp := MustTCP(p)
				tcp.Faults = netInjector(t, plan, seed)
				return tcp.TransferObserved(size, nil)
			}
			elapsed, st := run(7)
			if sum := st.SegTime + st.AckTime + st.SwitchTime + st.FaultTime; sum != elapsed {
				t.Fatalf("ledger %v != elapsed %v (stats %+v)", sum, elapsed, st)
			}
			if st.Retransmits == 0 {
				t.Fatal("no segments lost at 5% over a 1 MB transfer")
			}
			if st.FaultTime == 0 || elapsed <= cleanElapsed {
				t.Errorf("faults added no time: %v vs clean %v", elapsed, cleanElapsed)
			}
			// Loss and ack delay perturb only the fault term: the clean
			// ledger terms per segment/ack are untouched.
			if st.Segments != cleanStats.Segments || st.SegTime != cleanStats.SegTime {
				t.Errorf("faults changed the unfaulted segment ledger: %d/%v vs %d/%v",
					st.Segments, st.SegTime, cleanStats.Segments, cleanStats.SegTime)
			}
			elapsed2, st2 := run(7)
			if elapsed2 != elapsed || st2 != st {
				t.Error("same seed did not replay bit-identically")
			}
		})
	}
}

// A faulted UDP transfer keeps its own identity — PerPacket + Copy +
// Syscall + FaultTime equals Total() — and loss is fire-and-forget:
// counted, never charged. Only duplication costs time.
func TestUDPFaultedTransfer(t *testing.T) {
	lossOnly := &fault.Plan{Net: fault.NetFaults{UDPLossProb: 0.3}}
	u := MustUDP(osprofile.FreeBSD205())
	cleanTotal := u.Transfer(1<<20, 8192)

	u.Faults = netInjector(t, lossOnly, 11)
	st := u.TransferStats(1<<20, 8192)
	if st.Total() != cleanTotal || st.FaultTime != 0 {
		t.Errorf("pure loss changed ttcp send time: %v vs %v (fault %v)",
			st.Total(), cleanTotal, st.FaultTime)
	}
	if u.Faults.UDPLost == 0 {
		t.Error("no datagrams counted lost at 30%")
	}

	dups := &fault.Plan{Net: fault.NetFaults{UDPDupProb: 0.2, UDPReorderProb: 0.3}}
	u2 := MustUDP(osprofile.FreeBSD205())
	u2.Faults = netInjector(t, dups, 11)
	st2 := u2.TransferStats(1<<20, 8192)
	if sum := st2.PerPacket + st2.Copy + st2.Syscall + st2.FaultTime; sum != st2.Total() {
		t.Fatalf("UDP ledger %v != total %v", sum, st2.Total())
	}
	if st2.FaultTime == 0 || u2.Faults.UDPDuplicated == 0 {
		t.Error("duplicates charged nothing")
	}
	if u2.Faults.UDPReordered == 0 {
		t.Error("no reorders counted at 30%")
	}
	if st2.Total() <= cleanTotal {
		t.Error("duplicated datagrams did not slow the transfer")
	}
}
