package netstack

import (
	"testing"
	"testing/quick"

	"repro/internal/osprofile"
	"repro/internal/sim"
)

func TestUDPPeakOrdering(t *testing.T) {
	// Figure 13 at large packets: FreeBSD ~50 > Solaris ~32 > Linux ~16.
	bw := func(p *osprofile.Profile) float64 {
		u := MustUDP(p)
		return BandwidthMbps(4<<20, u.Transfer(4<<20, 8192))
	}
	l, f, s := bw(osprofile.Linux128()), bw(osprofile.FreeBSD205()), bw(osprofile.Solaris24())
	if !(f > s && s > l) {
		t.Fatalf("UDP ordering wrong: linux=%.1f freebsd=%.1f solaris=%.1f", l, f, s)
	}
	if f < 42 || f > 55 {
		t.Errorf("FreeBSD UDP peak %.1f, want ~48 (\"almost 50\")", f)
	}
	if s < 28 || s > 36 {
		t.Errorf("Solaris UDP peak %.1f, want ~32", s)
	}
	if l < 13 || l > 19 {
		t.Errorf("Linux UDP peak %.1f, want ~16", l)
	}
}

func TestUDPBandwidthGrowsWithPacketSize(t *testing.T) {
	// Figure 13's shape: per-packet costs dominate small datagrams.
	u := MustUDP(osprofile.FreeBSD205())
	var prev float64
	for _, size := range []int{128, 512, 1024, 4096, 8192} {
		bw := BandwidthMbps(4<<20, u.Transfer(4<<20, size))
		if bw <= prev {
			t.Fatalf("bandwidth did not grow with packet size at %d: %.2f <= %.2f", size, bw, prev)
		}
		prev = bw
	}
}

func TestUDPHalfOfPipeBandwidth(t *testing.T) {
	// §9.2: FreeBSD's and Solaris' UDP runs at ~50% of their pipe
	// bandwidth; Linux's at ~14% of its own.
	pipeBW := map[string]float64{"Linux": 119.36, "FreeBSD": 98.03, "Solaris": 65.38}
	for _, p := range osprofile.Paper() {
		u := MustUDP(p)
		bw := BandwidthMbps(4<<20, u.Transfer(4<<20, 8192))
		frac := bw / pipeBW[p.Name]
		switch p.Name {
		case "FreeBSD", "Solaris":
			if frac < 0.40 || frac > 0.60 {
				t.Errorf("%s UDP/pipe = %.2f, want ~0.5", p.Name, frac)
			}
		case "Linux":
			if frac < 0.10 || frac > 0.20 {
				t.Errorf("Linux UDP/pipe = %.2f, want ~0.14", frac)
			}
		}
	}
}

func TestTCPTable5(t *testing.T) {
	// Table 5: FreeBSD 65.95, Solaris 60.11, Linux 25.03 Mb/s.
	want := map[string][2]float64{
		"Linux":   {22, 28},
		"FreeBSD": {60, 72},
		"Solaris": {54, 66},
	}
	for _, p := range osprofile.Paper() {
		c := MustTCP(p)
		bw := BandwidthMbps(3<<20, c.Transfer(3<<20))
		if lo, hi := want[p.Name][0], want[p.Name][1]; bw < lo || bw > hi {
			t.Errorf("%s TCP = %.2f Mb/s, want [%v, %v]", p.Name, bw, lo, hi)
		}
	}
}

func TestLinuxWindowAblation(t *testing.T) {
	// A5: widening Linux's one-packet window recovers most of the gap to
	// FreeBSD.
	var prev float64
	for _, w := range []int{1, 2, 4, 8, 16, 32} {
		c := MustTCP(osprofile.Linux128())
		c.WindowOverride = w
		bw := BandwidthMbps(3<<20, c.Transfer(3<<20))
		if bw < prev {
			t.Fatalf("bandwidth fell when window grew to %d: %.2f < %.2f", w, bw, prev)
		}
		prev = bw
	}
	if prev < 45 {
		t.Errorf("Linux with a 32-packet window reaches only %.1f Mb/s; the window was the bottleneck (§9.3)", prev)
	}
}

func TestTCPWindowAccessors(t *testing.T) {
	c := MustTCP(osprofile.Solaris24())
	if c.Window() != osprofile.Solaris24().Net.TCPWindowPackets {
		t.Fatal("Window() must reflect the profile")
	}
	c.WindowOverride = 3
	if c.Window() != 3 {
		t.Fatal("WindowOverride not honoured")
	}
}

func TestTransferScalesLinearly(t *testing.T) {
	c := MustTCP(osprofile.FreeBSD205())
	t1 := c.Transfer(1 << 20)
	t4 := c.Transfer(4 << 20)
	ratio := float64(t4) / float64(t1)
	if ratio < 3.8 || ratio > 4.2 {
		t.Fatalf("4x transfer took %.2fx the time; want ~4x", ratio)
	}
}

func TestPanicsOnBadSizes(t *testing.T) {
	u := MustUDP(osprofile.Linux128())
	c := MustTCP(osprofile.Linux128())
	l := Ethernet10()
	cases := []func(){
		func() { u.PacketTime(0) },
		func() { u.PacketTime(70000) },
		func() { u.Transfer(0, 1024) },
		func() { c.Transfer(0) },
		func() { l.TransmitTime(0) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestEthernetLink(t *testing.T) {
	l := Ethernet10()
	// 8 KB over 10 Mb/s is ~6.55 ms of wire time plus 6 frames of
	// overhead.
	d := l.TransmitTime(8192)
	if d < 6*sim.Millisecond || d > 9*sim.Millisecond {
		t.Fatalf("8 KB transmit = %v, want ~7ms on 10 Mb/s Ethernet", d)
	}
	// The link can never exceed its wire rate.
	bw := BandwidthMbps(1<<20, l.TransmitTime(1<<20))
	if bw >= 10 {
		t.Fatalf("Ethernet delivered %.2f Mb/s, above the 10 Mb/s wire", bw)
	}
}

func TestBandwidthMbpsZeroDuration(t *testing.T) {
	if BandwidthMbps(100, 0) != 0 {
		t.Fatal("zero duration must give zero bandwidth, not infinity")
	}
}

// Property: TCP transfer time is monotone in transfer size and positive.
func TestTCPMonotoneProperty(t *testing.T) {
	c := MustTCP(osprofile.Solaris24())
	f := func(a, b uint16) bool {
		x, y := int(a)+1, int(a)+1+int(b)
		return c.Transfer(x) > 0 && c.Transfer(y) >= c.Transfer(x)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: UDP transfer equals the sum of its packets.
func TestUDPCompositionProperty(t *testing.T) {
	u := MustUDP(osprofile.FreeBSD205())
	f := func(nPackets uint8, size uint16) bool {
		n := int(nPackets%20) + 1
		s := int(size%8192) + 1
		total := u.Transfer(n*s, s)
		var sum sim.Duration
		for i := 0; i < n; i++ {
			sum += u.PacketTime(s)
		}
		return total == sum
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
