// Package netstack models the network protocol implementations of §9: UDP
// and TCP over the loopback interface, plus the 10 Mb/s Ethernet link used
// by the NFS experiments of §10.
//
// The paper benchmarks loopback deliberately ("we wanted to measure the
// best possible performance"), so UDP and TCP throughput here is purely a
// function of protocol-stack CPU costs: per-packet processing, data
// copies, and — decisive for Linux 1.2.8 — the TCP send window. The TCP
// model is a genuine sliding-window simulation: the sender spends CPU per
// segment until the window closes, control switches to the receiver, which
// consumes segments and acknowledges, reopening the window. Setting the
// window to one packet reproduces Linux's collapse in Table 5; widening it
// is ablation A5.
package netstack

import (
	"fmt"

	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/osprofile"
	"repro/internal/sim"
)

// UDP models a datagram path between two processes over loopback.
type UDP struct {
	os *osprofile.Profile
	// Faults, when non-nil, perturbs datagrams (loss, duplication,
	// reordering). Nil is the unfaulted path, byte-identical to builds
	// without the fault layer.
	Faults *fault.NetInjector
}

// NewUDP builds the UDP model for a personality. A personality whose
// network parameters cannot carry datagrams is a returned error.
func NewUDP(p *osprofile.Profile) (*UDP, error) {
	if p.Net.UDPMaxDatagram <= 0 {
		return nil, fmt.Errorf("netstack: %s: max datagram must be positive (have %d)",
			p, p.Net.UDPMaxDatagram)
	}
	return &UDP{os: p}, nil
}

// MustUDP is NewUDP for the built-in personalities, whose parameters are
// validated at load time.
func MustUDP(p *osprofile.Profile) *UDP {
	u, err := NewUDP(p)
	if err != nil {
		panic(err)
	}
	return u
}

// MaxDatagram returns the personality's largest sendable datagram.
// Workloads clamp their packet size to it (a real ttcp would get
// EMSGSIZE past it).
func (u *UDP) MaxDatagram() int { return u.os.Net.UDPMaxDatagram }

// PacketTime returns the CPU time one datagram of the given payload size
// consumes end to end: sender syscall and packetisation, the copies down
// and up (the per-KB constant already aggregates the path's copy count —
// Linux's includes its two unnecessary extra copies), and receiver
// delivery.
func (u *UDP) PacketTime(size int) sim.Duration {
	return u.PacketBreakdown(size).Total()
}

// UDPBreakdown attributes one datagram's CPU time to its components. The
// parts sum exactly to PacketTime (integer durations, same charges).
type UDPBreakdown struct {
	// PerPacket is the fixed protocol processing per datagram.
	PerPacket sim.Duration
	// Copy is the data movement down and up the stack.
	Copy sim.Duration
	// Syscall is both endpoints' system-call entry.
	Syscall sim.Duration
}

// Total returns the summed packet time.
func (b UDPBreakdown) Total() sim.Duration { return b.PerPacket + b.Copy + b.Syscall }

// PacketBreakdown returns the per-component decomposition of PacketTime.
func (u *UDP) PacketBreakdown(size int) UDPBreakdown {
	if size <= 0 {
		panic("netstack: datagram size must be positive")
	}
	if size > u.os.Net.UDPMaxDatagram {
		panic(fmt.Sprintf("netstack: datagram %d exceeds max %d", size, u.os.Net.UDPMaxDatagram))
	}
	n := &u.os.Net
	return UDPBreakdown{
		PerPacket: n.UDPPerPacket,
		Copy:      sim.Duration(int64(n.UDPCopyPerKB) * int64(size) / 1024),
		// Both endpoints pay syscall entry.
		Syscall: 2 * (u.os.Kernel.Syscall + u.os.Kernel.ReadWriteExtra),
	}
}

// UDPTransferStats decomposes a datagram transfer into the components
// its time went to. PerPacket + Copy + Syscall + FaultTime equals the
// transfer's elapsed time exactly.
type UDPTransferStats struct {
	// Packets is the number of datagrams sent.
	Packets int
	// PerPacket, Copy and Syscall attribute the unfaulted CPU time.
	PerPacket, Copy, Syscall sim.Duration
	// FaultTime is time added by injected faults (duplicate deliveries).
	FaultTime sim.Duration
}

// Total returns the summed transfer time.
func (s UDPTransferStats) Total() sim.Duration {
	return s.PerPacket + s.Copy + s.Syscall + s.FaultTime
}

// Transfer returns the time to move totalBytes in datagrams of the given
// size (the ttcp workload: 4 MB per iteration, §9.2).
func (u *UDP) Transfer(totalBytes, packetSize int) sim.Duration {
	return u.TransferStats(totalBytes, packetSize).Total()
}

// TransferStats is Transfer with the per-component decomposition. With a
// fault injector attached, each datagram draws its fate: a lost datagram
// is fire-and-forget (ttcp over UDP never retransmits — the send cost is
// already paid and the loss shows only in the counters), a duplicated
// datagram charges the receive-side share of a packet time again, and a
// reordered datagram is counted but uncharged (UDP does not resequence).
func (u *UDP) TransferStats(totalBytes, packetSize int) UDPTransferStats {
	if totalBytes <= 0 {
		panic("netstack: transfer size must be positive")
	}
	var st UDPTransferStats
	for sent := 0; sent < totalBytes; {
		n := packetSize
		if rem := totalBytes - sent; n > rem {
			n = rem
		}
		b := u.PacketBreakdown(n)
		st.Packets++
		st.PerPacket += b.PerPacket
		st.Copy += b.Copy
		st.Syscall += b.Syscall
		u.Faults.DropUDP()
		if u.Faults.DupUDP() {
			// The copy arrives too: the receiver repeats its half of the
			// packet processing and delivery work.
			st.FaultTime += b.Total() / 2
		}
		u.Faults.ReorderUDP()
		sent += n
	}
	return st
}

// BandwidthMbps converts a transfer into megabits per second.
func BandwidthMbps(bytes int, d sim.Duration) float64 {
	if d <= 0 {
		return 0
	}
	return float64(bytes) * 8 / d.Seconds() / 1e6
}

// TCP models a stream connection between two local processes.
type TCP struct {
	os *osprofile.Profile
	// WindowOverride, when positive, replaces the personality's window
	// (ablation A5). Zero means use the profile.
	WindowOverride int
	// Faults, when non-nil, injects segment loss (retransmit after an
	// RTO with exponential backoff) and delayed acknowledgements. Nil is
	// the unfaulted path, byte-identical to builds without the layer.
	Faults *fault.NetInjector
}

// NewTCP builds the TCP model for a personality. A personality that
// cannot form segments is a returned error.
func NewTCP(p *osprofile.Profile) (*TCP, error) {
	if p.Net.MSS <= 0 {
		return nil, fmt.Errorf("netstack: %s: MSS must be positive (have %d)", p, p.Net.MSS)
	}
	if p.Net.TCPWindowPackets <= 0 {
		return nil, fmt.Errorf("netstack: %s: TCP window must be positive (have %d packets)",
			p, p.Net.TCPWindowPackets)
	}
	return &TCP{os: p}, nil
}

// MustTCP is NewTCP for the built-in personalities, whose parameters are
// validated at load time.
func MustTCP(p *osprofile.Profile) *TCP {
	t, err := NewTCP(p)
	if err != nil {
		panic(err)
	}
	return t
}

// Window returns the effective send window in packets.
func (t *TCP) Window() int {
	if t.WindowOverride > 0 {
		return t.WindowOverride
	}
	return t.os.Net.TCPWindowPackets
}

// segTime is the CPU cost of processing one MSS-sized segment through one
// endpoint pair (send-side formation plus receive-side delivery).
func (t *TCP) segTime(payload int) sim.Duration {
	n := &t.os.Net
	return n.TCPPerPacket + sim.Duration(int64(n.TCPCopyPerKB)*int64(payload)/1024)
}

// TCPStats decomposes a Transfer: the event counts of the sliding-window
// walk and the time each activity consumed. SegTime + AckTime +
// SwitchTime + FaultTime equals the elapsed transfer time exactly —
// every duration the walk accrues is tagged with one of the four.
type TCPStats struct {
	// Segments is the number of MSS-or-smaller segments sent.
	Segments uint64
	// Acks is the number of cumulative acknowledgements.
	Acks uint64
	// WindowStalls counts the times the sender ran out of window credit
	// with data still to send — the Linux 1.2.8 collapse is this counter
	// exploding (one stall per segment at window 1).
	WindowStalls uint64
	// Switches is the number of scheduler switches (two per ack cycle).
	Switches uint64
	// Retransmits counts segments re-sent after injected loss.
	Retransmits uint64
	// SegTime, AckTime and SwitchTime attribute the unfaulted time.
	SegTime, AckTime, SwitchTime sim.Duration
	// FaultTime is injected time: wasted transmissions, RTO waits, and
	// delayed acks. Zero without a fault injector.
	FaultTime sim.Duration
}

// FoldMetrics adds the transfer decomposition into a registry under the
// given prefix (e.g. "tcp."). Fault counters fold only when faults
// actually fired, so unfaulted metric snapshots are unchanged.
func (s TCPStats) FoldMetrics(reg *obs.Registry, prefix string) {
	reg.Counter(prefix + "segments").Add(float64(s.Segments))
	reg.Counter(prefix + "acks").Add(float64(s.Acks))
	reg.Counter(prefix + "window_stalls").Add(float64(s.WindowStalls))
	reg.Counter(prefix + "switches").Add(float64(s.Switches))
	reg.Counter(prefix + "seg_us").Add(s.SegTime.Microseconds())
	reg.Counter(prefix + "ack_us").Add(s.AckTime.Microseconds())
	reg.Counter(prefix + "switch_us").Add(s.SwitchTime.Microseconds())
	if s.Retransmits > 0 || s.FaultTime > 0 {
		reg.Counter(prefix + "retransmits").Add(float64(s.Retransmits))
		reg.Counter(prefix + "fault_us").Add(s.FaultTime.Microseconds())
	}
}

// Transfer simulates moving totalBytes through the connection and returns
// the elapsed time. The simulation walks the sliding window: the sender
// emits segments while it has window credit; when the window closes, the
// scheduler switches to the receiver, which drains the in-flight segments,
// acknowledges (AckCost), and control returns to the sender (a second
// switch).
func (t *TCP) Transfer(totalBytes int) sim.Duration {
	elapsed, _ := t.TransferObserved(totalBytes, nil)
	return elapsed
}

// TransferObserved is Transfer with the walk decomposed into TCPStats
// and, when rec is non-nil, traced: send bursts become spans on a
// "tcp sender" track (cost = segments in the burst) and drain-and-ack
// cycles spans on a "tcp receiver" track (cost = segments drained), both
// stamped with elapsed transfer time as the virtual timeline. Observing
// never changes the elapsed result — the walk is the same code.
func (t *TCP) TransferObserved(totalBytes int, rec *obs.Recorder) (sim.Duration, TCPStats) {
	if totalBytes <= 0 {
		panic("netstack: transfer size must be positive")
	}
	n := &t.os.Net
	k := &t.os.Kernel
	window := t.Window()
	if window <= 0 {
		panic("netstack: window must be positive")
	}
	switchCost := k.CtxBase
	if k.Scheduler == osprofile.SchedScanAll {
		switchCost += sim.Duration(2 * int64(k.CtxPerTask))
	}
	var sendTrack, recvTrack obs.TrackID
	if rec.Enabled() {
		sendTrack = rec.Track("tcp sender")
		recvTrack = rec.Track("tcp receiver")
	}

	var st TCPStats
	var elapsed sim.Duration
	remaining := totalBytes
	credit := window
	inFlight := 0
	for remaining > 0 || inFlight > 0 {
		if remaining > 0 && credit > 0 {
			burstStart := elapsed
			burst := 0
			// Unfaulted full-MSS segments in a burst are identical integer
			// charges, so the whole run collapses to one multiplication —
			// exact, since summing k equal durations is k*d.
			if t.Faults == nil {
				if k := min(credit, remaining/n.MSS); k > 0 {
					d := t.segTime(n.MSS)
					elapsed += d * sim.Duration(k)
					st.Segments += uint64(k)
					st.SegTime += d * sim.Duration(k)
					remaining -= k * n.MSS
					credit -= k
					inFlight += k
					burst += k
				}
			}
			for remaining > 0 && credit > 0 {
				payload := n.MSS
				if payload > remaining {
					payload = remaining
				}
				d := t.segTime(payload)
				// Injected segment loss: the transmission was wasted, the
				// sender sits out the retransmit timeout (exponential
				// backoff on repeated loss of the same segment), then
				// sends again. Both the wasted CPU and the wait are fault
				// time, keeping the unfaulted ledger terms untouched.
				for attempt := 0; t.Faults.DropSegment(); attempt++ {
					w := t.Faults.RTOWait(attempt)
					elapsed += d + w
					st.FaultTime += d + w
					st.Retransmits++
				}
				elapsed += d
				st.Segments++
				st.SegTime += d
				remaining -= payload
				credit--
				inFlight++
				burst++
			}
			if rec.Enabled() {
				rec.BeginAt(sim.Time(burstStart), sendTrack, "send burst")
				rec.EndAt(sim.Time(elapsed), sendTrack, "send burst", float64(burst))
			}
			continue
		}
		// Window closed (or data exhausted): switch to the receiver,
		// which drains everything in flight and acks cumulatively, then
		// switch back.
		if remaining > 0 {
			st.WindowStalls++
		}
		drainStart := elapsed
		elapsed += switchCost
		// An injected delayed ack holds the cumulative ack back; the
		// sender's window stays shut for the duration.
		ackExtra := t.Faults.AckDelay()
		elapsed += n.AckCost + ackExtra
		elapsed += switchCost
		st.Switches += 2
		st.SwitchTime += 2 * switchCost
		st.Acks++
		st.AckTime += n.AckCost
		st.FaultTime += ackExtra
		if rec.Enabled() {
			rec.BeginAt(sim.Time(drainStart), recvTrack, "drain+ack")
			rec.EndAt(sim.Time(elapsed), recvTrack, "drain+ack", float64(inFlight))
		}
		credit += inFlight
		inFlight = 0
	}
	return elapsed, st
}

// Link models the shared 10 Mb/s Ethernet between NFS client and server.
type Link struct {
	// BandwidthMbps is the wire rate.
	BandwidthMbps float64
	// FrameOverhead is per-frame latency: preamble, inter-frame gap,
	// driver work on both ends.
	FrameOverhead sim.Duration
	// MTU is the maximum frame payload.
	MTU int
}

// Ethernet10 returns the paper machine's 3Com Etherlink III on a 10 Mb/s
// segment.
func Ethernet10() *Link {
	return &Link{BandwidthMbps: 10, FrameOverhead: 120 * sim.Microsecond, MTU: 1500}
}

// TransmitTime returns the wire time for a payload of the given size,
// including fragmentation into MTU-sized frames.
func (l *Link) TransmitTime(bytes int) sim.Duration {
	if bytes <= 0 {
		panic("netstack: transmit of non-positive size")
	}
	frames := (bytes + l.MTU - 1) / l.MTU
	wire := sim.Duration(float64(bytes) * 8 / (l.BandwidthMbps * 1e6) * float64(sim.Second))
	return wire + sim.Duration(frames)*l.FrameOverhead
}
