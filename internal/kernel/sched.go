package kernel

import (
	"fmt"

	"repro/internal/osprofile"
)

// The three scheduler structures of §5, implemented literally. Each keeps
// its own ready structure and reports the pick cost its mechanics imply.
// With the benchmarks' workloads (at most a couple of runnable processes
// at once) all three pick the same process in the same order — the paper's
// point is what the *pick itself* costs, and that differs wildly.

// scheduler is the dispatcher interface the machine drives.
type scheduler interface {
	// enqueue makes p ready.
	enqueue(p *Proc)
	// pick removes and returns the next process to run, plus the virtual
	// time the pick and switch cost. It returns nil when nothing is
	// runnable.
	pick() (*Proc, pickCost)
	// pending reports whether any process is ready.
	pending() bool
}

// pickCost carries the cost components of one dispatch.
type pickCost struct {
	// scanned counts the tasks examined (Linux's goodness loop).
	scanned int
	// tableMiss reports a dispatch-resource reload (Solaris).
	tableMiss bool
}

// newScheduler builds the structure for a personality. An unknown
// scheduler kind (a hand-edited profile JSON) is a returned error.
func newScheduler(m *Machine) (scheduler, error) {
	switch m.os.Kernel.Scheduler {
	case osprofile.SchedScanAll:
		return &scanAllSched{m: m}, nil
	case osprofile.SchedRunQueues:
		return &runQueueSched{}, nil
	case osprofile.SchedPreemptiveMT:
		s := &preemptiveSched{}
		if m.os.Kernel.CtxTableSize > 0 {
			s.table = newLRUTable(m.os.Kernel.CtxTableSize)
		}
		return s, nil
	}
	return nil, fmt.Errorf("kernel: %s: unknown scheduler kind %d", m.os, int(m.os.Kernel.Scheduler))
}

// scanAllSched is Linux 1.2's schedule(): on every dispatch it walks the
// whole task list recomputing each runnable task's "goodness" and takes
// the best. The walk is what Figure 1's linear growth measures.
type scanAllSched struct {
	m   *Machine
	seq uint64
}

func (s *scanAllSched) enqueue(p *Proc) {
	if p.ready {
		// Readying an already-ready task keeps its queue age: the real
		// scheduler's goodness counter is a property of the task, not of
		// the wakeup that delivered it.
		return
	}
	s.seq++
	p.readySeq = s.seq
	p.ready = true
}

func (s *scanAllSched) pick() (*Proc, pickCost) {
	var best *Proc
	scanned := 0
	// The real scheduler examines every task in the system, runnable or
	// not; goodness of a non-runnable task is 0.
	for _, p := range s.m.procs {
		if p.state == procDone {
			continue
		}
		scanned++
		if !p.ready {
			continue
		}
		// Goodness here is FIFO age: the longest-ready task wins,
		// which preserves the round-robin order the counter-based
		// goodness of the real scheduler produces for equal-priority
		// processes.
		if best == nil || p.readySeq < best.readySeq {
			best = p
		}
	}
	if best == nil {
		return nil, pickCost{}
	}
	best.ready = false
	return best, pickCost{scanned: scanned}
}

func (s *scanAllSched) pending() bool {
	for _, p := range s.m.procs {
		if p.ready && p.state != procDone {
			return true
		}
	}
	return false
}

// runQueueSched is 4.4BSD's constant-time dispatcher: an array of
// priority queues with a bitmap of non-empty levels; picking is find-
// first-set plus a dequeue, independent of process count.
type runQueueSched struct {
	queues [nQueues][]*Proc
	bitmap uint32
	count  int
}

// nQueues is 4.4BSD's 32 run queues.
const nQueues = 32

func (s *runQueueSched) enqueue(p *Proc) {
	if p.queued {
		// Already on a run queue; inserting again would let one process
		// be picked twice.
		return
	}
	p.queued = true
	q := p.priority % nQueues
	s.queues[q] = append(s.queues[q], p)
	s.bitmap |= 1 << q
	s.count++
}

func (s *runQueueSched) pick() (*Proc, pickCost) {
	if s.bitmap == 0 {
		return nil, pickCost{}
	}
	// Find-first-set over the bitmap.
	q := 0
	for s.bitmap&(1<<q) == 0 {
		q++
	}
	p := s.queues[q][0]
	s.queues[q] = s.queues[q][1:]
	if len(s.queues[q]) == 0 {
		s.bitmap &^= 1 << q
	}
	s.count--
	p.queued = false
	return p, pickCost{}
}

func (s *runQueueSched) pending() bool { return s.count > 0 }

// preemptiveSched is Solaris' dispatcher: constant-time pick from a
// dispatch queue, but each dispatch consults a bounded per-process
// mapping resource; reloading a missing entry is the Figure 1 jump.
type preemptiveSched struct {
	queue []*Proc
	table *lruTable
}

func (s *preemptiveSched) enqueue(p *Proc) {
	if p.queued {
		// The dispatch queue is a plain slice; without this guard a
		// double wakeup would duplicate the process in the queue.
		return
	}
	p.queued = true
	s.queue = append(s.queue, p)
}

func (s *preemptiveSched) pick() (*Proc, pickCost) {
	if len(s.queue) == 0 {
		return nil, pickCost{}
	}
	p := s.queue[0]
	s.queue = s.queue[1:]
	p.queued = false
	cost := pickCost{}
	if s.table != nil && !s.table.touch(p.pid) {
		cost.tableMiss = true
	}
	return p, cost
}

func (s *preemptiveSched) pending() bool { return len(s.queue) > 0 }
