package kernel

// Regression tests for the pipe wakeup-ordering fix: the wake policy is
// a personality knob (wake-all thundering herd vs wake-one), a reader
// woken with nothing buffered re-blocks without double-charging switch
// time, and the exact switch counts of a 2-writer/2-reader ping-pong
// are pinned per personality and policy.

import (
	"testing"

	"repro/internal/cpu"
	"repro/internal/osprofile"
	"repro/internal/sim"
)

// runPipePingPong runs the 2-writer/2-reader workload: readers block
// first, then each writer alternates a one-byte write with a yield, so
// every write finds both readers parked — the shape that separates
// waking the whole queue from waking its head.
func runPipePingPong(p *osprofile.Profile, msgs int) *Machine {
	m := MustMachine(cpu.PentiumP54C100(), p, sim.NewRNG(0))
	pipe := m.NewPipe()
	for i := 0; i < 2; i++ {
		m.Spawn("reader", func(pr *Proc) {
			for n := 0; n < msgs; n++ {
				pr.ReadFull(pipe, 1)
			}
		})
	}
	for i := 0; i < 2; i++ {
		m.Spawn("writer", func(pr *Proc) {
			for n := 0; n < msgs; n++ {
				pr.Write(pipe, 1)
				pr.YieldTimeslice()
			}
		})
	}
	m.Run()
	return m
}

// wakeOne clones a personality with the wake-one policy.
func wakeOne(p *osprofile.Profile) *osprofile.Profile {
	q := *p
	q.Kernel.PipeWakeAll = false
	return &q
}

func TestPipePingPongSwitchCountPinned(t *testing.T) {
	const msgs = 25
	cases := []struct {
		name    string
		profile *osprofile.Profile
		// The pinned switch counts: any change to wakeup ordering,
		// re-block accounting, or scheduler queueing moves these.
		wakeAll uint64
		wakeOne uint64
	}{
		{"Linux 1.2.8", osprofile.Linux128(), 92, 103},
		{"FreeBSD 2.0.5R", osprofile.FreeBSD205(), 92, 103},
		{"Solaris 2.4", osprofile.Solaris24(), 92, 103},
	}
	for _, c := range cases {
		if !c.profile.Kernel.PipeWakeAll {
			t.Fatalf("%s: built-in personality must default to wake-all (baseline safety)", c.name)
		}
		all := runPipePingPong(c.profile, msgs)
		one := runPipePingPong(wakeOne(c.profile), msgs)
		if all.Switches() != c.wakeAll {
			t.Errorf("%s wake-all: %d switches, pinned %d", c.name, all.Switches(), c.wakeAll)
		}
		if one.Switches() != c.wakeOne {
			t.Errorf("%s wake-one: %d switches, pinned %d", c.name, one.Switches(), c.wakeOne)
		}
		// The policies must be observably different. Note the direction:
		// with two writers stocking the pipe, waking the whole queue lets
		// both readers drain it in one trip (fewer wakeup dispatches),
		// while wake-one pays a dispatch per message. The herd only
		// wastes switches when a woken reader finds nothing buffered —
		// the single-writer shape below.
		if all.Switches() == one.Switches() {
			t.Errorf("%s: wake policy had no effect on switch count (%d)",
				c.name, all.Switches())
		}
		// Both policies move the same data in the same virtual order.
		if all.PhaseTime(PhaseCopy) != one.PhaseTime(PhaseCopy) {
			t.Errorf("%s: copy time diverged: %v vs %v",
				c.name, all.PhaseTime(PhaseCopy), one.PhaseTime(PhaseCopy))
		}
	}
}

// TestPipeWokenReaderReblocksOnce pins the re-block accounting under the
// thundering herd: a write of one byte wakes both readers; the loser
// finds the pipe empty and re-blocks. The loser's spurious trip must
// cost exactly one dispatch (the wakeup itself), never two — the
// re-block path charges nothing.
func TestPipeWokenReaderReblocksOnce(t *testing.T) {
	run := func(p *osprofile.Profile) *Machine {
		m := MustMachine(cpu.PentiumP54C100(), p, sim.NewRNG(0))
		pipe := m.NewPipe()
		for i := 0; i < 2; i++ {
			m.Spawn("reader", func(pr *Proc) {
				pr.ReadFull(pipe, 1)
			})
		}
		m.Spawn("writer", func(pr *Proc) {
			pr.Write(pipe, 1)
			pr.YieldTimeslice()
			pr.Write(pipe, 1)
		})
		m.Run()
		return m
	}
	// Single writer, one byte per write: the first write wakes both
	// readers under the herd, the loser finds the pipe already drained
	// and re-blocks. That spurious trip must cost exactly one dispatch
	// (the wakeup itself) — the re-block path charges nothing — so the
	// totals pin to these counts. A double-charge on re-block, or a
	// wakeup charged to the sleeper instead of the waker, moves them.
	all := run(osprofile.Linux128())
	one := run(wakeOne(osprofile.Linux128()))
	const pinnedAll, pinnedOne = 7, 6
	if all.Switches() != pinnedAll {
		t.Fatalf("herd re-block workload made %d switches, pinned %d", all.Switches(), pinnedAll)
	}
	if one.Switches() != pinnedOne {
		t.Fatalf("wake-one workload made %d switches, pinned %d", one.Switches(), pinnedOne)
	}
	// In this shape the herd can never beat wake-one: every spurious
	// wakeup is pure dispatch overhead.
	if all.Switches() < one.Switches() {
		t.Fatalf("herd (%d switches) beat wake-one (%d) in a shape where extra wakeups are pure waste",
			all.Switches(), one.Switches())
	}
}
