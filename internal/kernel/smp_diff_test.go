package kernel

// The seeded differential test behind the BENCH_baseline safety claim:
// at NCPU=1 the SMP engine must reproduce the uniprocessor machine's
// accounting bit for bit — same elapsed time, same switch count, same
// per-activity time split — for every personality, on the T-series
// probe shapes (the getpid loop and a yield round-robin). The legacy
// machine runs process bodies as goroutines under a baton; the SMP
// machine is an explicit state machine; agreement here means the SMP
// dispatch cost model (goodness scan width, constant-time pick,
// dispatch-table LRU) is the same model, not a lookalike.

import (
	"testing"

	"repro/internal/cpu"
	"repro/internal/osprofile"
	"repro/internal/sim"
)

// diffStats is the comparable accounting of one run.
type diffStats struct {
	elapsed  sim.Duration
	switches uint64
	dispatch sim.Duration
	syscall  sim.Duration
	user     sim.Duration
}

func legacyStats(m *Machine) diffStats {
	return diffStats{
		elapsed:  m.Now().Sub(0),
		switches: m.Switches(),
		dispatch: m.PhaseTime(PhaseDispatch),
		syscall:  m.PhaseTime(PhaseSyscall),
		user:     m.PhaseTime(PhaseUser),
	}
}

func smpStats(m *SMPMachine) diffStats {
	return diffStats{
		elapsed:  m.Elapsed(),
		switches: m.Switches(),
		dispatch: m.DispatchTime(),
		syscall:  m.SyscallTime(),
		user:     m.UserTime(),
	}
}

func TestSMPAtOneCPUMatchesUniprocessorGetpid(t *testing.T) {
	const iters = 10_000
	for _, p := range osprofile.All() {
		leg := MustMachine(cpu.PentiumP54C100(), p, sim.NewRNG(0))
		leg.Spawn("getpid-loop", func(pr *Proc) {
			for i := 0; i < iters; i++ {
				pr.Getpid()
			}
		})
		leg.Run()

		smp := MustSMPMachine(p, 1)
		smp.SpawnThread("getpid-loop", []Op{{Kind: OpSyscall}}, iters)
		smp.Run()

		if l, s := legacyStats(leg), smpStats(smp); l != s {
			t.Errorf("%s getpid: legacy %+v != smp %+v", p, l, s)
		}
	}
}

func TestSMPAtOneCPUMatchesUniprocessorYieldRing(t *testing.T) {
	// 40 processes exercise the Solaris dispatch table past its 32
	// entries, so LRU miss charging is compared too; 5 processes cover
	// the small-ring shape of Figure 1.
	for _, shape := range []struct{ nproc, laps int }{{5, 40}, {40, 5}} {
		for _, p := range osprofile.All() {
			leg := MustMachine(cpu.PentiumP54C100(), p, sim.NewRNG(0))
			for i := 0; i < shape.nproc; i++ {
				leg.Spawn("yielder", func(pr *Proc) {
					for lap := 0; lap < shape.laps; lap++ {
						pr.YieldTimeslice()
					}
				})
			}
			leg.Run()

			smp := MustSMPMachine(p, 1)
			for i := 0; i < shape.nproc; i++ {
				smp.SpawnThread("yielder", []Op{{Kind: OpYield}}, shape.laps)
			}
			smp.Run()

			if l, s := legacyStats(leg), smpStats(smp); l != s {
				t.Errorf("%s yield ring %dx%d: legacy %+v != smp %+v",
					p, shape.nproc, shape.laps, l, s)
			}
		}
	}
}

// TestSMPAtOneCPUMatchesUniprocessorMixed runs a compute + syscall +
// yield mix, the closing test that the three charge classes land in the
// same columns.
func TestSMPAtOneCPUMatchesUniprocessorMixed(t *testing.T) {
	const laps, think = 200, 7 * sim.Microsecond
	for _, p := range osprofile.All() {
		leg := MustMachine(cpu.PentiumP54C100(), p, sim.NewRNG(0))
		for i := 0; i < 3; i++ {
			leg.Spawn("mixed", func(pr *Proc) {
				for lap := 0; lap < laps; lap++ {
					pr.Charge(think)
					pr.Syscall()
					pr.YieldTimeslice()
				}
			})
		}
		leg.Run()

		smp := MustSMPMachine(p, 1)
		for i := 0; i < 3; i++ {
			smp.SpawnThread("mixed", []Op{
				{Kind: OpThink, D: think},
				{Kind: OpSyscall},
				{Kind: OpYield},
			}, laps)
		}
		smp.Run()

		if l, s := legacyStats(leg), smpStats(smp); l != s {
			t.Errorf("%s mixed: legacy %+v != smp %+v", p, l, s)
		}
	}
}
