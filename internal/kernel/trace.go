package kernel

import (
	"fmt"

	"repro/internal/sim"
)

// TraceEvent is one recorded kernel event. Tracing exists to make the
// models inspectable: an annotated timeline of a token ring shows exactly
// where each personality spends its microseconds (syscall entry, copy,
// wakeup, dispatch), which is how the paper's Figure 1 decomposition is
// verified by eye.
type TraceEvent struct {
	// When is the virtual time of the event.
	When sim.Time
	// Kind is the event class: spawn, dispatch, block, wake, exit,
	// pipe-write, pipe-read.
	Kind string
	// PID is the process involved (0 for kernel-only events).
	PID int
	// Detail is a human-readable annotation.
	Detail string
}

// String formats the event as a timeline line.
func (e TraceEvent) String() string {
	return fmt.Sprintf("%12s  %-9s pid=%-3d %s",
		e.When.Sub(0).Std(), e.Kind, e.PID, e.Detail)
}

// EnableTrace starts recording kernel events, keeping at most limit
// (older events are dropped first). Tracing is off by default and costs
// nothing when off.
func (m *Machine) EnableTrace(limit int) {
	if limit <= 0 {
		limit = 4096
	}
	m.traceLimit = limit
	m.tracing = true
	m.traceBuf = nil
}

// TraceEvents returns the recorded events in time order.
func (m *Machine) TraceEvents() []TraceEvent {
	out := make([]TraceEvent, len(m.traceBuf))
	copy(out, m.traceBuf)
	return out
}

// trace records one event when tracing is enabled.
func (m *Machine) trace(kind string, pid int, format string, args ...any) {
	if !m.tracing {
		return
	}
	e := TraceEvent{
		When: m.clock.Now(),
		Kind: kind,
		PID:  pid,
	}
	if len(args) == 0 {
		e.Detail = format
	} else {
		e.Detail = fmt.Sprintf(format, args...)
	}
	m.traceBuf = append(m.traceBuf, e)
	if len(m.traceBuf) > m.traceLimit {
		m.traceBuf = m.traceBuf[len(m.traceBuf)-m.traceLimit:]
	}
}
