package kernel

import (
	"fmt"

	"repro/internal/obs"
	"repro/internal/sim"
)

// TraceEvent is one recorded kernel event. Tracing exists to make the
// models inspectable: an annotated timeline of a token ring shows exactly
// where each personality spends its microseconds (syscall entry, copy,
// wakeup, dispatch), which is how the paper's Figure 1 decomposition is
// verified by eye.
type TraceEvent struct {
	// When is the virtual time of the event.
	When sim.Time
	// Kind is the event class: spawn, dispatch, block, wake, exit,
	// pipe-write, pipe-read.
	Kind string
	// PID is the process involved (0 for kernel-only events).
	PID int
	// Detail is a human-readable annotation.
	Detail string
}

// String formats the event as a timeline line.
func (e TraceEvent) String() string {
	return fmt.Sprintf("%12s  %-9s pid=%-3d %s",
		e.When.Sub(0).Std(), e.Kind, e.PID, e.Detail)
}

// EnableTrace starts recording kernel events into a fixed-size ring of at
// most limit entries (0 means the default 4096); once full, the oldest
// events are overwritten first. The ring's backing array is allocated
// once here, so steady-state tracing never reallocates. Tracing is off by
// default and costs nothing when off.
func (m *Machine) EnableTrace(limit int) {
	if limit <= 0 {
		limit = 4096
	}
	m.traceLimit = limit
	m.tracing = true
	m.traceBuf = make([]TraceEvent, 0, limit)
	m.traceHead = 0
}

// TraceEvents returns the recorded events in time order (for a full ring,
// the oldest surviving event leads).
func (m *Machine) TraceEvents() []TraceEvent {
	out := make([]TraceEvent, 0, len(m.traceBuf))
	out = append(out, m.traceBuf[m.traceHead:]...)
	out = append(out, m.traceBuf[:m.traceHead]...)
	return out
}

// Observe attaches an obs recorder: kernel narration becomes obs instant
// events, dispatches and syscalls become spans, and each process gets its
// own track. Pass nil to detach. Processes spawned both before and after
// the call are covered.
func (m *Machine) Observe(rec *obs.Recorder) {
	m.rec = rec
	if rec == nil {
		m.kernelTrack = 0
		return
	}
	m.kernelTrack = rec.Track("kernel")
	for _, p := range m.procs {
		p.track = rec.Track(p.trackName())
	}
}

// Recorder returns the attached obs recorder (nil when detached).
func (m *Machine) Recorder() *obs.Recorder { return m.rec }

// trackName labels a process's timeline in trace exports.
func (p *Proc) trackName() string {
	return fmt.Sprintf("pid %d %s", p.pid, p.name)
}

// observing reports whether any narrative sink (text trace ring or obs
// recorder) is attached. Hot call sites with formatted details must guard
// trace() with it so variadic boxing never happens when observability is
// off — that guard is what keeps the disabled path at zero allocations.
func (m *Machine) observing() bool { return m.tracing || m.rec != nil }

// trace records one narrated event to every attached sink.
func (m *Machine) trace(kind string, pid int, format string, args ...any) {
	if !m.observing() {
		return
	}
	detail := format
	if len(args) > 0 {
		detail = fmt.Sprintf(format, args...)
	}
	if m.tracing {
		e := TraceEvent{When: m.clock.Now(), Kind: kind, PID: pid, Detail: detail}
		if len(m.traceBuf) == m.traceLimit {
			m.traceBuf[m.traceHead] = e
			m.traceHead++
			if m.traceHead == m.traceLimit {
				m.traceHead = 0
			}
		} else {
			m.traceBuf = append(m.traceBuf, e)
		}
	}
	if m.rec != nil {
		m.rec.Instant(m.kernelTrack, kind, pid, detail)
	}
}
