package kernel

// Table-driven coverage of the three §5 dispatcher structures, pinning
// the double-enqueue guards: readying an already-runnable process must
// be a no-op for every personality, or the slice-backed schedulers would
// let one process be picked twice (and the goodness scan would reset its
// queue age). Also pins that each structure's pickCost matches its
// documented mechanics.

import (
	"testing"

	"repro/internal/cpu"
	"repro/internal/osprofile"
	"repro/internal/sim"
)

// mkSched builds a personality's scheduler plus n fake procs registered
// with the machine (the goodness scan walks m.procs, so the procs must
// be visible there; they never run).
func mkSched(t *testing.T, p *osprofile.Profile, n int) (scheduler, []*Proc) {
	t.Helper()
	m := MustMachine(cpu.PentiumP54C100(), p, sim.NewRNG(0))
	s, err := newScheduler(m)
	if err != nil {
		t.Fatal(err)
	}
	procs := make([]*Proc, n)
	for i := range procs {
		procs[i] = &Proc{m: m, pid: i + 1, priority: 16}
		m.procs = append(m.procs, procs[i])
	}
	return s, procs
}

func TestSchedulerStructures(t *testing.T) {
	cases := []struct {
		name    string
		profile *osprofile.Profile
		// scanned is the expected pick cost with three live processes:
		// the goodness loop examines every task in the system; the
		// bitmap and dispatch-queue structures examine none.
		scanned int
	}{
		{"scan-all", osprofile.Linux128(), 3},
		{"run-queues", osprofile.FreeBSD205(), 0},
		{"preemptive", osprofile.Solaris24(), 0},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			s, procs := mkSched(t, c.profile, 3)

			// Empty structure: nothing pending, nil pick, zero cost.
			if s.pending() {
				t.Fatal("empty scheduler reports pending work")
			}
			if p, cost := s.pick(); p != nil || cost.scanned != 0 || cost.tableMiss {
				t.Fatalf("empty pick = %v cost %+v, want nil and zero", p, cost)
			}

			// Double enqueue collapses to one entry.
			s.enqueue(procs[0])
			s.enqueue(procs[0])
			if !s.pending() {
				t.Fatal("enqueued process not pending")
			}
			got, cost := s.pick()
			if got != procs[0] {
				t.Fatalf("picked %v, want pid 1", got)
			}
			if cost.scanned != c.scanned {
				t.Fatalf("pick scanned %d tasks, want %d", cost.scanned, c.scanned)
			}
			if p, _ := s.pick(); p != nil {
				t.Fatalf("double enqueue duplicated pid %d in the ready structure", p.pid)
			}
			if s.pending() {
				t.Fatal("drained scheduler still reports pending work")
			}

			// FIFO order for equal priorities, and a re-enqueue of an
			// already-ready process keeps its queue position (the scan-all
			// goodness age is a property of the task, not the wakeup).
			s.enqueue(procs[1])
			s.enqueue(procs[2])
			s.enqueue(procs[1])
			if first, _ := s.pick(); first != procs[1] {
				t.Fatalf("re-enqueue moved pid 2 from the queue head; picked %v", first)
			}
			if second, _ := s.pick(); second != procs[2] {
				t.Fatalf("picked %v second, want pid 3", second)
			}
			if p, _ := s.pick(); p != nil {
				t.Fatalf("phantom third entry pid %d after two enqueues", p.pid)
			}
		})
	}
}

// TestPreemptiveDispatchTable pins the Solaris table mechanics: a cold
// pick reloads the bounded dispatch resource (tableMiss), an immediately
// repeated pick of the same process hits.
func TestPreemptiveDispatchTable(t *testing.T) {
	p := osprofile.Solaris24()
	if p.Kernel.CtxTableSize <= 0 {
		t.Fatal("Solaris personality lost its bounded dispatch table")
	}
	s, procs := mkSched(t, p, 2)
	s.enqueue(procs[0])
	if _, cost := s.pick(); !cost.tableMiss {
		t.Fatal("cold pick did not reload the dispatch table")
	}
	s.enqueue(procs[0])
	if _, cost := s.pick(); cost.tableMiss {
		t.Fatal("immediately repeated pick missed the dispatch table")
	}
	// A different process evicts nothing at size 32 but still misses cold.
	s.enqueue(procs[1])
	if _, cost := s.pick(); !cost.tableMiss {
		t.Fatal("first pick of a second process did not miss the table")
	}
}
