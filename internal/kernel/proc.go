package kernel

import (
	"repro/internal/obs"
	"repro/internal/sim"
)

type procState int

const (
	procEmbryo procState = iota
	procRunnable
	procRunning
	procBlocked
	procDone
)

// killSignal unwinds a simulated process goroutine during Shutdown.
type killSignal struct{}

// Proc is one simulated process. Its body function runs on its own
// goroutine, but the kernel's baton guarantees only one process executes
// at a time. All Proc methods must be called from within the body
// function.
type Proc struct {
	m      *Machine
	pid    int
	name   string
	state  procState
	killed bool

	resume  chan struct{}
	yielded chan struct{}

	// priority indexes the BSD run queues (all benchmark processes run at
	// the same user priority). ready/readySeq serve the Linux goodness
	// scan. queued guards the slice-backed schedulers against double
	// insertion when an already-runnable process is readied again.
	priority int
	ready    bool
	readySeq uint64
	queued   bool

	// UserTime accumulates the virtual time this process charged.
	UserTime sim.Duration

	// track is this process's timeline in the attached obs recorder
	// (0 when none is attached).
	track obs.TrackID
}

// Spawn creates a process running fn and makes it runnable. The process
// does not execute until Run (fork-cost accounting is the caller's choice
// via ChargeFork, since benchmark setup is usually outside the timed
// region).
func (m *Machine) Spawn(name string, fn func(p *Proc)) *Proc {
	p := &Proc{
		m:        m,
		pid:      m.nextPID,
		name:     name,
		state:    procEmbryo,
		priority: 16, // mid-range user priority
		resume:   make(chan struct{}),
		yielded:  make(chan struct{}),
	}
	m.nextPID++
	m.procs = append(m.procs, p)
	if m.rec != nil {
		p.track = m.rec.Track(p.trackName())
	}
	if m.observing() {
		m.trace("spawn", p.pid, "%s", name)
	}
	go func() {
		<-p.resume
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(killSignal); !ok {
					panic(r)
				}
			}
			p.state = procDone
			if p.m.observing() {
				p.m.trace("exit", p.pid, "%s", p.name)
			}
			if p.m.draining {
				// Shutdown unwinds processes over the old handshake.
				p.yielded <- struct{}{}
				return
			}
			if p.m.rec != nil {
				p.m.rec.End(p.track, "run", 0)
			}
			p.m.passBaton(p)
		}()
		if p.killed {
			panic(killSignal{})
		}
		fn(p)
	}()
	m.ready(p)
	return p
}

// PID returns the process identifier.
func (p *Proc) PID() int { return p.pid }

// Name returns the process name given at Spawn.
func (p *Proc) Name() string { return p.name }

// Machine returns the machine this process runs on.
func (p *Proc) Machine() *Machine { return p.m }

// Charge advances virtual time for user-level work done by this process.
func (p *Proc) Charge(d sim.Duration) {
	p.m.clock.Advance(d)
	p.UserTime += d
	p.m.phases[PhaseUser] += d
}

// Syscall charges the bare system-call entry/exit cost (what the getpid
// benchmark measures, Table 2).
func (p *Proc) Syscall() {
	p.m.chargeSpan(p.track, "syscall", PhaseSyscall, p.m.os.Kernel.Syscall)
}

// Getpid performs the paper's reference null system call.
func (p *Proc) Getpid() int {
	p.Syscall()
	return p.pid
}

// rwSyscall charges the cost of a read/write-class system call: the bare
// trap plus argument validation and file-table work.
func (p *Proc) rwSyscall() {
	k := &p.m.os.Kernel
	p.m.chargeSpan(p.track, "syscall", PhaseSyscall, k.Syscall+k.ReadWriteExtra)
}

// block parks the process until another process (or the kernel) readies
// it. It must only be called while running. The blocking process closes
// its own "run" span and dispatches its successor directly (switch-to).
func (p *Proc) block() {
	if p.m.observing() {
		p.m.trace("block", p.pid, "%s", p.name)
	}
	p.state = procBlocked
	if p.m.draining {
		p.yielded <- struct{}{}
	} else {
		if p.m.rec != nil {
			p.m.rec.End(p.track, "run", 0)
		}
		p.m.passBaton(p)
	}
	<-p.resume
	if p.killed {
		panic(killSignal{})
	}
	p.state = procRunning
}

// YieldTimeslice gives up the CPU voluntarily, going to the back of the
// run queue. If the scheduler picks this process right back (nothing
// else runnable) it keeps running without parking.
func (p *Proc) YieldTimeslice() {
	p.m.ready(p)
	if p.m.draining {
		p.yielded <- struct{}{}
	} else {
		if p.m.rec != nil {
			p.m.rec.End(p.track, "run", 0)
		}
		if p.m.passBaton(p) {
			return
		}
	}
	<-p.resume
	if p.killed {
		panic(killSignal{})
	}
	p.state = procRunning
}

// ChargeFork charges the personality's fork cost (process duplication).
func (p *Proc) ChargeFork() {
	p.m.chargeSpan(p.track, "fork", PhaseProcess, p.m.os.Kernel.Fork)
}

// ChargeExec charges the personality's exec cost (program image load).
func (p *Proc) ChargeExec() {
	p.m.chargeSpan(p.track, "exec", PhaseProcess, p.m.os.Kernel.Exec)
}
