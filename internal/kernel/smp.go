package kernel

// SMP support (DESIGN.md §16): a machine with NCPU virtual CPUs, per-CPU
// run queues with deterministic work stealing (or one global queue,
// selected per personality), and per-CPU busy/idle/spin ledgers that sum
// to the machine's elapsed time exactly.
//
// Where the uniprocessor Machine runs benchmark bodies as goroutines
// under a baton, the SMP machine is a conservative parallel
// discrete-event simulator: every thread is an explicit state machine
// over a small op program (compute, syscall, yield, lock/unlock, RCU),
// and the engine always steps the CPU with the globally minimal local
// clock (ties to the lowest CPU index). Because a CPU only ever observes
// shared state — lock words, run queues, RCU reader marks — when its
// local time is minimal, every observation is causally consistent, the
// whole simulation is a pure single-goroutine function of its inputs,
// and the output is bit-identical at any host parallelism.
//
// Exactness invariant: every advance of a CPU's local clock goes through
// one of three funnels (advanceBusy, advanceSpin, advanceIdle), each
// paired with exactly one ledger add, and finalize pads each CPU's idle
// ledger to the machine end time — so busy[c] + idle[c] + spin[c] ==
// elapsed holds exactly, per CPU, always. The audit engine re-checks it.
//
// At NCPU=1 the engine reduces to the uniprocessor scheduler bit for
// bit: one FIFO queue (the per-CPU layout degenerates to it), the same
// per-personality pick costs (goodness scan width, run-queue constant
// pick, dispatch-table LRU misses), and dispatch charges only when
// control actually changes hands. The seeded differential test in
// smp_diff_test.go pins that equivalence for every personality.

import (
	"fmt"

	"repro/internal/obs"
	"repro/internal/osprofile"
	"repro/internal/sim"
)

// OpKind is one instruction kind of a thread program.
type OpKind int

const (
	// OpThink charges Op.D of user computation.
	OpThink OpKind = iota
	// OpSyscall charges the personality's bare system-call cost.
	OpSyscall
	// OpYield surrenders the CPU and re-enters the run queue.
	OpYield
	// OpLock acquires Op.L (spinning or blocking per the lock's kind).
	OpLock
	// OpUnlock releases Op.L.
	OpUnlock
	// OpRCURead runs an RCU read-side section of length Op.D against Op.R.
	OpRCURead
	// OpRCUSync waits out Op.R's grace period (writer-side synchronize).
	OpRCUSync
)

// Op is one instruction of a thread program.
type Op struct {
	Kind OpKind
	// D is the op's duration operand (OpThink, OpRCURead).
	D sim.Duration
	// L is the lock operand (OpLock, OpUnlock).
	L *Lock
	// R is the RCU domain operand (OpRCURead, OpRCUSync).
	R *RCU
}

type sThreadState int

const (
	sReady sThreadState = iota
	sRunning
	sBlocked
	sDone
)

// SThread is one thread of an SMP machine: an op program executed Loops
// times.
type SThread struct {
	m     *SMPMachine
	tid   int
	name  string
	state sThreadState
	// home is the thread's home run queue under the per-CPU layout.
	home int
	// cpu is the CPU currently (or last) running the thread.
	cpu int

	ops   []Op
	pc    int
	loops int

	// readyAt stamps when the thread last became runnable; a CPU
	// dispatching it earlier on its own clock accrues the gap as idle.
	readyAt sim.Time
	// backoff is the spinlock backoff ladder position (0 = not spinning).
	backoff sim.Duration
	// waitStart stamps when the thread began waiting for a lock.
	waitStart sim.Time

	// UserTime accumulates the thread's OpThink/OpRCURead compute time.
	UserTime sim.Duration
	// Iters counts completed program iterations.
	Iters uint64
}

// TID returns the thread identifier (1-based, like PIDs).
func (t *SThread) TID() int { return t.tid }

// SMPMachine is a simulated multiprocessor running one OS personality.
// Like Machine it is driven from a single goroutine and is not safe for
// concurrent use.
type SMPMachine struct {
	os   *osprofile.Profile
	ncpu int

	threads []*SThread
	nextTID int
	live    int

	// Per-CPU state, indexed by CPU.
	now     []sim.Time
	busyT   []sim.Duration
	idleT   []sim.Duration
	spinT   []sim.Duration
	running []*SThread
	lastRun []int

	// Run queues: globalQ under the shared layout, cpuQ[c] per CPU under
	// osprofile.KernelCosts.PerCPUQueues.
	globalQ []*SThread
	cpuQ    [][]*SThread
	// table is the Solaris dispatch-resource model, shared machine-wide
	// exactly like the uniprocessor scheduler's.
	table *lruTable

	switches uint64
	steals   uint64

	// Machine-wide phase aggregates (the per-CPU ledgers are the exact
	// decomposition; these attribute the busy side by activity).
	dispatchT sim.Duration
	syscallT  sim.Duration
	userT     sim.Duration
	lockT     sim.Duration

	locks []*Lock

	clock    sim.Clock
	elapsed  sim.Duration
	finished bool

	rec       *obs.Recorder
	cpuTracks []obs.TrackID
}

// NewSMPMachine builds an SMP machine with ncpu virtual CPUs running the
// given personality. An unknown scheduler kind or a non-positive CPU
// count is a returned error.
func NewSMPMachine(os *osprofile.Profile, ncpu int) (*SMPMachine, error) {
	if ncpu < 1 {
		return nil, fmt.Errorf("kernel: SMP machine needs at least one CPU, got %d", ncpu)
	}
	switch os.Kernel.Scheduler {
	case osprofile.SchedScanAll, osprofile.SchedRunQueues, osprofile.SchedPreemptiveMT:
	default:
		return nil, fmt.Errorf("kernel: %s: unknown scheduler kind %d", os, int(os.Kernel.Scheduler))
	}
	m := &SMPMachine{
		os:      os,
		ncpu:    ncpu,
		nextTID: 1,
		now:     make([]sim.Time, ncpu),
		busyT:   make([]sim.Duration, ncpu),
		idleT:   make([]sim.Duration, ncpu),
		spinT:   make([]sim.Duration, ncpu),
		running: make([]*SThread, ncpu),
		lastRun: make([]int, ncpu),
	}
	for c := range m.lastRun {
		m.lastRun[c] = -1
	}
	if os.Kernel.PerCPUQueues {
		m.cpuQ = make([][]*SThread, ncpu)
	}
	if os.Kernel.Scheduler == osprofile.SchedPreemptiveMT && os.Kernel.CtxTableSize > 0 {
		m.table = newLRUTable(os.Kernel.CtxTableSize)
	}
	return m, nil
}

// MustSMPMachine is NewSMPMachine for the built-in personalities.
func MustSMPMachine(os *osprofile.Profile, ncpu int) *SMPMachine {
	m, err := NewSMPMachine(os, ncpu)
	if err != nil {
		panic(err)
	}
	return m
}

// OS returns the machine's personality; NCPU its CPU count.
func (m *SMPMachine) OS() *osprofile.Profile { return m.os }

// NCPU returns the number of virtual CPUs.
func (m *SMPMachine) NCPU() int { return m.ncpu }

// Clock exposes the machine clock (advanced to the end time by Run) so
// an obs ring recorder can be constructed against it.
func (m *SMPMachine) Clock() *sim.Clock { return &m.clock }

// Switches returns the context switches performed; Steals the dispatches
// served by stealing from another CPU's queue.
func (m *SMPMachine) Switches() uint64 { return m.switches }

// Steals returns the number of cross-CPU queue steals.
func (m *SMPMachine) Steals() uint64 { return m.steals }

// Elapsed returns the machine's total virtual run time (valid after Run).
func (m *SMPMachine) Elapsed() sim.Duration { return m.elapsed }

// Ledger returns CPU c's exact time decomposition. After Run,
// busy+idle+spin == Elapsed for every CPU.
func (m *SMPMachine) Ledger(c int) (busy, idle, spin sim.Duration) {
	return m.busyT[c], m.idleT[c], m.spinT[c]
}

// DispatchTime, SyscallTime, UserTime and LockTime return the
// machine-wide busy-side activity aggregates.
func (m *SMPMachine) DispatchTime() sim.Duration { return m.dispatchT }

// SyscallTime returns the total system-call entry/exit time.
func (m *SMPMachine) SyscallTime() sim.Duration { return m.syscallT }

// UserTime returns the total user computation time.
func (m *SMPMachine) UserTime() sim.Duration { return m.userT }

// LockTime returns the total fixed lock/RCU operation time (spin-wait
// time is in the per-CPU spin ledgers, not here).
func (m *SMPMachine) LockTime() sim.Duration { return m.lockT }

// Threads returns the machine's threads in spawn order.
func (m *SMPMachine) Threads() []*SThread { return m.threads }

// Observe attaches a span recorder: each CPU gets its own track
// ("cpu 0", "cpu 1", ...) carrying run spans per scheduling period and
// spin spans per contended spinlock acquisition.
func (m *SMPMachine) Observe(rec *obs.Recorder) {
	m.rec = rec
	m.cpuTracks = make([]obs.TrackID, m.ncpu)
	for c := range m.cpuTracks {
		m.cpuTracks[c] = rec.Track(fmt.Sprintf("cpu %d", c))
	}
}

// FoldMetrics adds the machine's counters to a registry under the given
// prefix ("smp." conventionally): switches, steals, the busy-side
// activity split, and the per-CPU ledgers.
func (m *SMPMachine) FoldMetrics(reg *obs.Registry, prefix string) {
	if reg == nil {
		return
	}
	reg.Counter(prefix + "context_switches").Add(float64(m.switches))
	reg.Counter(prefix + "steals").Add(float64(m.steals))
	reg.Counter(prefix + "phase_us.dispatch").Add(m.dispatchT.Microseconds())
	reg.Counter(prefix + "phase_us.syscall").Add(m.syscallT.Microseconds())
	reg.Counter(prefix + "phase_us.user").Add(m.userT.Microseconds())
	reg.Counter(prefix + "phase_us.lock").Add(m.lockT.Microseconds())
	for c := 0; c < m.ncpu; c++ {
		reg.Counter(fmt.Sprintf("%scpu%d.busy_us", prefix, c)).Add(m.busyT[c].Microseconds())
		reg.Counter(fmt.Sprintf("%scpu%d.idle_us", prefix, c)).Add(m.idleT[c].Microseconds())
		reg.Counter(fmt.Sprintf("%scpu%d.spin_us", prefix, c)).Add(m.spinT[c].Microseconds())
	}
}

// SpawnThread creates a thread that executes ops loops times, runnable
// at time zero. Threads must be spawned before Run.
func (m *SMPMachine) SpawnThread(name string, ops []Op, loops int) *SThread {
	if m.finished {
		panic("kernel: spawning on a finished SMP machine")
	}
	if loops < 1 {
		panic("kernel: SMP thread needs at least one loop")
	}
	t := &SThread{
		m:     m,
		tid:   m.nextTID,
		name:  name,
		home:  (m.nextTID - 1) % m.ncpu,
		cpu:   -1,
		ops:   ops,
		loops: loops,
	}
	m.nextTID++
	m.threads = append(m.threads, t)
	m.live++
	m.enqueue(t, 0)
	return t
}

// enqueue marks t runnable as of time at and appends it to its queue.
func (m *SMPMachine) enqueue(t *SThread, at sim.Time) {
	t.state = sReady
	t.readyAt = at
	if m.cpuQ != nil {
		m.cpuQ[t.home] = append(m.cpuQ[t.home], t)
		return
	}
	m.globalQ = append(m.globalQ, t)
}

// The three clock funnels. Every local-clock advance goes through
// exactly one of them, each paired with exactly one ledger add — the
// mechanical basis of the per-CPU exactness invariant.

func (m *SMPMachine) advanceBusy(c int, agg *sim.Duration, d sim.Duration) {
	m.now[c] = m.now[c].Add(d)
	m.busyT[c] += d
	*agg += d
}

func (m *SMPMachine) advanceSpin(c int, d sim.Duration) {
	m.now[c] = m.now[c].Add(d)
	m.spinT[c] += d
}

func (m *SMPMachine) advanceIdle(c int, d sim.Duration) {
	m.now[c] = m.now[c].Add(d)
	m.idleT[c] += d
}

// queueHead returns the thread CPU c would dispatch next (without
// removing it): its own queue's head, or — per-CPU layout only — the
// head of the longest other queue (steal candidate, ties to the lowest
// victim index).
func (m *SMPMachine) queueHead(c int) *SThread {
	if m.cpuQ == nil {
		if len(m.globalQ) == 0 {
			return nil
		}
		return m.globalQ[0]
	}
	if q := m.cpuQ[c]; len(q) > 0 {
		return q[0]
	}
	if v := m.stealVictim(c); v >= 0 {
		return m.cpuQ[v][0]
	}
	return nil
}

// stealVictim picks the CPU to steal from: the longest queue, ties to
// the lowest index; -1 when every other queue is empty.
func (m *SMPMachine) stealVictim(c int) int {
	victim := -1
	for v := range m.cpuQ {
		if v == c || len(m.cpuQ[v]) == 0 {
			continue
		}
		if victim < 0 || len(m.cpuQ[v]) > len(m.cpuQ[victim]) {
			victim = v
		}
	}
	return victim
}

// takeQueued removes and returns CPU c's next thread, reporting whether
// it was stolen from another CPU's queue.
func (m *SMPMachine) takeQueued(c int) (t *SThread, stolen bool) {
	if m.cpuQ == nil {
		if len(m.globalQ) == 0 {
			return nil, false
		}
		t, m.globalQ = m.globalQ[0], m.globalQ[1:]
		return t, false
	}
	if q := m.cpuQ[c]; len(q) > 0 {
		t, m.cpuQ[c] = q[0], q[1:]
		return t, false
	}
	v := m.stealVictim(c)
	if v < 0 {
		return nil, false
	}
	q := m.cpuQ[v]
	t, m.cpuQ[v] = q[0], q[1:]
	return t, true
}

// cpuKey returns the virtual time at which CPU c can next make progress:
// its local clock while it runs a thread, or the dispatch time of the
// thread it would pull; ok is false when the CPU has nothing to do.
func (m *SMPMachine) cpuKey(c int) (key sim.Time, ok bool) {
	if m.running[c] != nil {
		return m.now[c], true
	}
	h := m.queueHead(c)
	if h == nil {
		return 0, false
	}
	key = m.now[c]
	if h.readyAt > key {
		key = h.readyAt
	}
	return key, true
}

// nextCPU picks the CPU with the globally minimal progress time (ties to
// the lowest index) — the conservative sequencing rule that makes every
// shared-state observation causally consistent.
func (m *SMPMachine) nextCPU() int {
	best := -1
	var bestKey sim.Time
	for c := 0; c < m.ncpu; c++ {
		key, ok := m.cpuKey(c)
		if !ok {
			continue
		}
		if best < 0 || key < bestKey {
			best, bestKey = c, key
		}
	}
	return best
}

// dispatch pulls CPU c's next thread, accrues the idle gap up to its
// ready time, and charges the personality's switch cost when control
// actually changes hands — the same goodness-scan width, constant-time
// pick, and dispatch-table LRU rules as the uniprocessor scheduler.
func (m *SMPMachine) dispatch(c int) {
	t, stolen := m.takeQueued(c)
	if t == nil {
		return
	}
	if t.readyAt > m.now[c] {
		m.advanceIdle(c, t.readyAt.Sub(m.now[c]))
	}
	k := &m.os.Kernel
	scanned := 0
	miss := false
	switch k.Scheduler {
	case osprofile.SchedScanAll:
		scanned = m.live
	case osprofile.SchedPreemptiveMT:
		// The dispatch resource is consulted on every pick, exactly like
		// the uniprocessor scheduler; the reload penalty is only paid
		// when the dispatch actually switches.
		if m.table != nil && !m.table.touch(t.tid) {
			miss = true
		}
	}
	if stolen {
		m.advanceBusy(c, &m.dispatchT, k.StealCost)
		m.steals++
	}
	if t.tid != m.lastRun[c] {
		d := k.CtxBase + sim.Duration(int64(k.CtxPerTask)*int64(scanned))
		if miss {
			d += k.CtxTableMiss
		}
		m.advanceBusy(c, &m.dispatchT, d)
		m.switches++
	}
	m.lastRun[c] = t.tid
	m.running[c] = t
	t.state = sRunning
	t.cpu = c
	if m.rec != nil {
		m.rec.BeginAt(m.now[c], m.cpuTracks[c], "run "+t.name)
	}
}

// endRun closes CPU c's current run span (if observing).
func (m *SMPMachine) endRun(c int) {
	if m.rec != nil && m.running[c] != nil {
		m.rec.EndAt(m.now[c], m.cpuTracks[c], "run "+m.running[c].name, 0)
	}
}

// finish retires t after its last iteration.
func (m *SMPMachine) finish(c int, t *SThread) {
	t.state = sDone
	m.live--
	m.endRun(c)
	m.running[c] = nil
}

// exec advances CPU c's current thread by one op (handling the
// iteration wrap first, so a thread re-dispatched after its final yield
// retires the way a uniprocessor process exits after being picked).
func (m *SMPMachine) exec(c int, t *SThread) {
	if t.pc == len(t.ops) {
		t.Iters++
		t.loops--
		if t.loops <= 0 {
			m.finish(c, t)
			return
		}
		t.pc = 0
	}
	op := t.ops[t.pc]
	switch op.Kind {
	case OpThink:
		m.advanceBusy(c, &m.userT, op.D)
		t.UserTime += op.D
		t.pc++
	case OpSyscall:
		m.advanceBusy(c, &m.syscallT, m.os.Kernel.Syscall)
		t.pc++
	case OpYield:
		t.pc++
		m.endRun(c)
		m.enqueue(t, m.now[c])
		m.running[c] = nil
	case OpLock:
		op.L.acquire(c, t)
	case OpUnlock:
		op.L.release(c, t)
	case OpRCURead:
		op.R.read(c, t, op.D)
	case OpRCUSync:
		op.R.synchronize(c, t)
	default:
		panic(fmt.Sprintf("kernel: unknown SMP op kind %d", int(op.Kind)))
	}
}

// Run executes every thread to completion and returns the machine's
// elapsed virtual time. It panics with a *sim.DeadlockError if threads
// remain blocked with nothing runnable.
func (m *SMPMachine) Run() sim.Duration {
	if m.finished {
		panic("kernel: SMP machine already run")
	}
	for {
		c := m.nextCPU()
		if c < 0 {
			break
		}
		if m.running[c] == nil {
			m.dispatch(c)
			continue
		}
		m.exec(c, m.running[c])
	}
	var end sim.Time
	for _, n := range m.now {
		if n > end {
			end = n
		}
	}
	var blocked []string
	for _, t := range m.threads {
		if t.state == sBlocked {
			blocked = append(blocked, fmt.Sprintf("%d (%s)", t.tid, t.name))
		}
	}
	if len(blocked) > 0 {
		panic(&sim.DeadlockError{Now: end, Blocked: blocked})
	}
	// Pad every CPU's idle ledger to the machine end time, closing the
	// per-CPU exactness identity busy+idle+spin == elapsed.
	for c := range m.now {
		if end > m.now[c] {
			m.advanceIdle(c, end.Sub(m.now[c]))
		}
	}
	m.clock.AdvanceTo(end)
	m.elapsed = end.Sub(0)
	m.finished = true
	return m.elapsed
}
