package kernel

import "repro/internal/sim"

// Pipe is a simulated UNIX pipe: a bounded kernel buffer with blocking
// reads and writes. Data content is not simulated — only byte counts and
// their costs — since no benchmark in the paper inspects pipe payloads.
//
// The cost model follows §9.1: each read or write pays the
// read/write-class system-call cost, moving data pays the personality's
// per-KB copy cost (Solaris' STREAMS implementation makes this large),
// and waking the blocked peer pays the wake cost.
type Pipe struct {
	m        *Machine
	capacity int
	buffered int

	readers []*Proc
	writers []*Proc

	// BytesTransferred counts all data that has passed through.
	BytesTransferred uint64
}

// NewPipe creates a pipe with the personality's kernel buffer capacity.
func (m *Machine) NewPipe() *Pipe {
	return &Pipe{m: m, capacity: m.os.Kernel.PipeCapacity}
}

// Capacity returns the kernel buffer size in bytes.
func (pp *Pipe) Capacity() int { return pp.capacity }

// Buffered returns the bytes currently in the kernel buffer.
func (pp *Pipe) Buffered() int { return pp.buffered }

// copyCost is the cost of moving n bytes between user and kernel space.
func (pp *Pipe) copyCost(n int) sim.Duration {
	return sim.Duration(int64(pp.m.os.Kernel.PipeCopyPerKB) * int64(n) / 1024)
}

// wake readies waiters on q and returns the remaining queue. Under the
// personality's wake-all policy (every built-in profile: historical
// kernels thundering-herd their pipe sleepers) the whole queue is woken
// for one wake charge. Under wake-one only the FIFO head is woken, one
// wake charge per wakeup; a reader woken when another consumed the data
// first simply re-blocks — the re-block costs nothing extra, since
// switch time is charged at dispatch, not at wakeup.
func (pp *Pipe) wake(q []*Proc) []*Proc {
	if len(q) == 0 {
		return q
	}
	if !pp.m.os.Kernel.PipeWakeAll {
		p := q[0]
		pp.m.chargeSpan(pp.m.kernelTrack, "wakeup", PhaseWakeup, pp.m.os.Kernel.PipeWake)
		if pp.m.observing() {
			pp.m.trace("wake", p.PID(), "%s", p.Name())
		}
		pp.m.ready(p)
		copy(q, q[1:])
		return q[:len(q)-1]
	}
	pp.m.chargeSpan(pp.m.kernelTrack, "wakeup", PhaseWakeup, pp.m.os.Kernel.PipeWake)
	for _, p := range q {
		if pp.m.observing() {
			pp.m.trace("wake", p.PID(), "%s", p.Name())
		}
		pp.m.ready(p)
	}
	return q[:0]
}

// Write performs one write(2) of n bytes, blocking until every byte is in
// the pipe (UNIX pipe writes of any size are atomic with respect to
// completion: the call does not return until all data is written).
func (p *Proc) Write(pp *Pipe, n int) {
	if n <= 0 {
		panic("kernel: pipe write of non-positive length")
	}
	p.rwSyscall()
	for n > 0 {
		space := pp.capacity - pp.buffered
		if space == 0 {
			pp.writers = append(pp.writers, p)
			p.block()
			continue
		}
		chunk := n
		if chunk > space {
			chunk = space
		}
		pp.m.chargeSpan(p.track, "copy", PhaseCopy, pp.copyCost(chunk))
		pp.buffered += chunk
		pp.BytesTransferred += uint64(chunk)
		n -= chunk
		if pp.m.observing() {
			pp.m.trace("pipe-write", p.PID(), "%d bytes (buffered %d)", chunk, pp.buffered)
		}
		pp.readers = pp.wake(pp.readers)
	}
}

// Read performs one read(2) of up to n bytes. Like the real call it
// blocks only until some data is available, then returns what is there
// (bounded by n).
func (p *Proc) Read(pp *Pipe, n int) int {
	if n <= 0 {
		panic("kernel: pipe read of non-positive length")
	}
	p.rwSyscall()
	for pp.buffered == 0 {
		pp.readers = append(pp.readers, p)
		p.block()
	}
	chunk := n
	if chunk > pp.buffered {
		chunk = pp.buffered
	}
	pp.m.chargeSpan(p.track, "copy", PhaseCopy, pp.copyCost(chunk))
	pp.buffered -= chunk
	if pp.m.observing() {
		pp.m.trace("pipe-read", p.PID(), "%d bytes (buffered %d)", chunk, pp.buffered)
	}
	pp.writers = pp.wake(pp.writers)
	return chunk
}

// ReadFull reads exactly n bytes, looping over Read as real programs do.
// It returns the number of read(2) calls issued.
func (p *Proc) ReadFull(pp *Pipe, n int) int {
	calls := 0
	for n > 0 {
		got := p.Read(pp, n)
		n -= got
		calls++
	}
	return calls
}
