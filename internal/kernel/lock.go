package kernel

// Lock personalities for the SMP machine (DESIGN.md §16): spinlocks with
// a capped exponential backoff ladder, sleep locks with direct-handoff
// wake-one through the scheduler, and an RCU-style read-mostly domain
// whose writers wait out the grace period on-CPU. All costs come from
// the personality's osprofile.LockCosts, so the same workload run under
// Linux, FreeBSD, and Solaris shows each system's distinct
// spin-vs-sleep crossover.
//
// Charging rules worth stating once:
//
//   - Spin waiting (failed polls and backoff) goes to the per-CPU spin
//     ledger, not the busy ledger: the CPU is burning cycles but doing
//     no useful work, and the audit engine checks the split.
//   - Sleep-lock blocking costs nothing while blocked — the CPU goes on
//     to run something else (or accrues idle), which is the whole point
//     of sleeping.
//   - A releasing sleep-lock holder hands the lock directly to the FIFO
//     head waiter (ownership never becomes free in between), so convoys
//     are fair and wait times are bounded by queue depth; the waiter
//     still pays its dispatch latency before running.
//   - RCU grace-period waits are charged to the writer CPU's spin
//     ledger: the writer busy-waits for readers to drain, keeping the
//     idle ledger meaning "truly idle".

import (
	"repro/internal/sim"
	"repro/internal/stats"
)

// LockKind selects the contention strategy of a Lock.
type LockKind int

const (
	// SpinLock burns CPU polling with capped exponential backoff.
	SpinLock LockKind = iota
	// SleepLock blocks the thread and hands off through the scheduler.
	SleepLock
)

// String names the kind (used by exhibit labels).
func (k LockKind) String() string {
	if k == SpinLock {
		return "spin"
	}
	return "sleep"
}

// Lock is a mutual-exclusion lock on an SMP machine.
type Lock struct {
	m     *SMPMachine
	kind  LockKind
	held  bool
	owner int
	// waiters is the sleep-lock FIFO block queue.
	waiters []*SThread

	// Acquires counts successful acquisitions; Releases releases.
	Acquires uint64
	// Releases counts releases.
	Releases uint64
	// Contended counts acquisitions that had to wait; Uncontended the
	// ones granted immediately. Contended+Uncontended == Acquires.
	Contended   uint64
	Uncontended uint64
	// Blocks counts sleep-lock blocks; Wakeups the handoff wakeups.
	// Blocks == Wakeups once the machine drains.
	Blocks  uint64
	Wakeups uint64
	// WaitHist observes the wait time of every contended acquisition.
	WaitHist stats.Histogram
}

// NewLock creates a lock of the given kind on the machine.
func (m *SMPMachine) NewLock(kind LockKind) *Lock {
	l := &Lock{m: m, kind: kind, owner: -1}
	m.locks = append(m.locks, l)
	return l
}

// Kind returns the lock's contention strategy.
func (l *Lock) Kind() LockKind { return l.kind }

// Locks returns the machine's locks in creation order.
func (m *SMPMachine) Locks() []*Lock { return m.locks }

// acquire executes t's OpLock on CPU c. On success t.pc advances; a
// failed spin poll leaves pc in place (the op retries at the thread's
// next turn, later in virtual time by the backoff), and a sleep block
// parks the thread with pc still at the OpLock (release advances it
// during handoff).
func (l *Lock) acquire(c int, t *SThread) {
	m := l.m
	costs := &m.os.Lock
	if l.kind == SpinLock {
		if !l.held {
			if t.backoff > 0 {
				// The poll that finally wins: the wait ends here, before
				// the acquire charge, so WaitHist measures pure waiting.
				l.Contended++
				l.WaitHist.Observe(int64(m.now[c].Sub(t.waitStart)))
				if m.rec != nil {
					m.rec.EndAt(m.now[c], m.cpuTracks[c], "spin", 0)
				}
				t.backoff = 0
			} else {
				l.Uncontended++
			}
			l.held = true
			l.owner = t.tid
			l.Acquires++
			m.advanceBusy(c, &m.lockT, costs.SpinAcquire)
			t.pc++
			return
		}
		// Failed poll: charge the check plus the current backoff to the
		// spin ledger and double the ladder, capped. Old profile JSONs
		// may carry zero quanta; clamp to a positive floor so the ladder
		// always advances virtual time (no livelock).
		q := costs.SpinCheck
		if q <= 0 {
			q = sim.Duration(1)
		}
		cap := costs.SpinBackoffMax
		if cap < q {
			cap = q
		}
		if t.backoff == 0 {
			t.waitStart = m.now[c]
			if m.rec != nil {
				m.rec.BeginAt(m.now[c], m.cpuTracks[c], "spin")
			}
			t.backoff = q
		} else {
			t.backoff *= 2
			if t.backoff > cap {
				t.backoff = cap
			}
		}
		m.advanceSpin(c, q+t.backoff)
		return
	}
	// Sleep lock.
	if !l.held {
		l.held = true
		l.owner = t.tid
		l.Acquires++
		l.Uncontended++
		m.advanceBusy(c, &m.lockT, costs.SleepAcquire)
		t.pc++
		return
	}
	m.advanceBusy(c, &m.lockT, costs.SleepBlock)
	t.waitStart = m.now[c]
	l.waiters = append(l.waiters, t)
	l.Blocks++
	t.state = sBlocked
	m.endRun(c)
	m.running[c] = nil
}

// release executes t's OpUnlock on CPU c.
func (l *Lock) release(c int, t *SThread) {
	m := l.m
	costs := &m.os.Lock
	t.pc++
	l.Releases++
	if l.kind == SpinLock {
		l.held = false
		l.owner = -1
		m.advanceBusy(c, &m.lockT, costs.SpinAcquire)
		return
	}
	if len(l.waiters) == 0 {
		l.held = false
		l.owner = -1
		m.advanceBusy(c, &m.lockT, costs.SleepAcquire)
		return
	}
	// Direct handoff: ownership passes to the FIFO head without the lock
	// ever becoming free, so late-arriving spinners can't barge.
	var w *SThread
	w, l.waiters = l.waiters[0], l.waiters[1:]
	m.advanceBusy(c, &m.lockT, costs.SleepWake)
	l.owner = w.tid
	l.Wakeups++
	l.Acquires++
	l.Contended++
	w.pc++
	l.WaitHist.Observe(int64(m.now[c].Sub(w.waitStart)))
	m.enqueue(w, m.now[c])
}

// RCU is a read-mostly synchronization domain: readers run short
// sections concurrently at near-zero cost; writers wait out the grace
// period until every reader that started before the synchronize has
// finished.
type RCU struct {
	m *SMPMachine
	// lastReaderEnd is the virtual time the latest read-side section
	// ends; a synchronize started before it waits for the difference.
	lastReaderEnd sim.Time

	// Readers counts read-side sections; Syncs writer synchronizations.
	Readers uint64
	Syncs   uint64
}

// NewRCU creates an RCU domain on the machine.
func (m *SMPMachine) NewRCU() *RCU {
	return &RCU{m: m}
}

// read executes a read-side section of length d on CPU c.
func (r *RCU) read(c int, t *SThread, d sim.Duration) {
	m := r.m
	m.advanceBusy(c, &m.lockT, m.os.Lock.RCURead)
	m.advanceBusy(c, &m.userT, d)
	t.UserTime += d
	r.Readers++
	if m.now[c] > r.lastReaderEnd {
		r.lastReaderEnd = m.now[c]
	}
	t.pc++
}

// synchronize waits out the grace period on CPU c. The conservative
// sequencer guarantees the writer's clock is globally minimal when this
// runs, so lastReaderEnd already covers every reader that could precede
// the synchronize; the gap is charged to the spin ledger (the writer
// busy-waits on-CPU).
func (r *RCU) synchronize(c int, t *SThread) {
	m := r.m
	if gap := r.lastReaderEnd.Sub(m.now[c]); gap > 0 {
		m.advanceSpin(c, gap)
	}
	m.advanceBusy(c, &m.lockT, m.os.Lock.RCUSync)
	r.Syncs++
	t.pc++
}
