package kernel

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/cpu"
	"repro/internal/obs"
	"repro/internal/osprofile"
	"repro/internal/sim"
)

func newLinux() *Machine {
	return MustMachine(cpu.PentiumP54C100(), osprofile.Linux128(), sim.NewRNG(1))
}
func newFreeBSD() *Machine {
	return MustMachine(cpu.PentiumP54C100(), osprofile.FreeBSD205(), sim.NewRNG(1))
}
func newSolaris() *Machine {
	return MustMachine(cpu.PentiumP54C100(), osprofile.Solaris24(), sim.NewRNG(1))
}

func TestGetpidChargesSyscall(t *testing.T) {
	m := newLinux()
	var pid int
	m.Spawn("getpid", func(p *Proc) {
		for i := 0; i < 1000; i++ {
			pid = p.Getpid()
		}
	})
	m.Run()
	if pid == 0 {
		t.Fatal("Getpid returned 0")
	}
	want := sim.Duration(1000 * int64(m.OS().Kernel.Syscall))
	got := m.Now().Sub(0) - m.switchOverheadForOneProc()
	if got != want {
		t.Fatalf("1000 getpids took %v, want %v (plus initial dispatch)", got, want)
	}
}

// switchOverheadForOneProc returns the cost of the single initial dispatch
// a one-process run performs.
func (m *Machine) switchOverheadForOneProc() sim.Duration {
	k := &m.OS().Kernel
	cost := k.CtxBase
	if k.Scheduler == osprofile.SchedScanAll {
		// The process has exited by the time we compute this; it was the
		// only task when dispatched.
		cost += k.CtxPerTask
	}
	return cost
}

func TestProcsRunToCompletion(t *testing.T) {
	m := newLinux()
	ran := make([]bool, 5)
	for i := 0; i < 5; i++ {
		i := i
		m.Spawn("worker", func(p *Proc) { ran[i] = true })
	}
	m.Run()
	for i, r := range ran {
		if !r {
			t.Fatalf("process %d never ran", i)
		}
	}
}

func TestPIDsAreUnique(t *testing.T) {
	m := newLinux()
	a := m.Spawn("a", func(p *Proc) {})
	b := m.Spawn("b", func(p *Proc) {})
	if a.PID() == b.PID() {
		t.Fatal("duplicate PIDs")
	}
	if a.Name() != "a" || b.Name() != "b" {
		t.Fatal("names not preserved")
	}
	m.Run()
}

func TestPipeTransfersData(t *testing.T) {
	m := newLinux()
	pipe := m.NewPipe()
	var got int
	m.Spawn("writer", func(p *Proc) { p.Write(pipe, 10000) })
	m.Spawn("reader", func(p *Proc) {
		for got < 10000 {
			got += p.Read(pipe, 4096)
		}
	})
	m.Run()
	if got != 10000 {
		t.Fatalf("reader got %d bytes, want 10000", got)
	}
	if pipe.BytesTransferred != 10000 {
		t.Fatalf("BytesTransferred = %d, want 10000", pipe.BytesTransferred)
	}
	if pipe.Buffered() != 0 {
		t.Fatalf("pipe left %d bytes buffered", pipe.Buffered())
	}
}

func TestPipeBlocksWriterAtCapacity(t *testing.T) {
	m := newLinux()
	pipe := m.NewPipe()
	cap := pipe.Capacity()
	order := []string{}
	m.Spawn("writer", func(p *Proc) {
		p.Write(pipe, cap) // fits exactly, no block
		order = append(order, "wrote-cap")
		p.Write(pipe, 1) // must block until reader drains
		order = append(order, "wrote-extra")
	})
	m.Spawn("reader", func(p *Proc) {
		order = append(order, "reading")
		p.ReadFull(pipe, cap+1)
		order = append(order, "read-all")
	})
	m.Run()
	if len(order) != 4 || order[0] != "wrote-cap" || order[1] != "reading" {
		t.Fatalf("order = %v; writer must block at capacity", order)
	}
}

func TestPipeReadBlocksUntilData(t *testing.T) {
	m := newLinux()
	pipe := m.NewPipe()
	var got int
	m.Spawn("reader", func(p *Proc) { got = p.Read(pipe, 100) })
	m.Spawn("writer", func(p *Proc) { p.Write(pipe, 42) })
	m.Run()
	if got != 42 {
		t.Fatalf("read returned %d, want the 42 available bytes", got)
	}
}

func TestTokenRingPasses(t *testing.T) {
	// A miniature ctx ring: 4 processes, 100 laps.
	m := newFreeBSD()
	const nproc, laps = 4, 100
	pipes := make([]*Pipe, nproc)
	for i := range pipes {
		pipes[i] = m.NewPipe()
	}
	counts := make([]int, nproc)
	for i := 0; i < nproc; i++ {
		i := i
		m.Spawn("ring", func(p *Proc) {
			for lap := 0; lap < laps; lap++ {
				if !(i == 0 && lap == 0) {
					p.ReadFull(pipes[i], 1)
				}
				counts[i]++
				p.Write(pipes[(i+1)%nproc], 1)
			}
			if i == 0 {
				p.ReadFull(pipes[0], 1) // collect the final token
			}
		})
	}
	m.Run()
	for i, c := range counts {
		if c != laps {
			t.Fatalf("process %d passed token %d times, want %d", i, c, laps)
		}
	}
	if m.Switches() == 0 {
		t.Fatal("ring ran with no context switches")
	}
}

func TestLinuxSwitchCostGrowsWithProcs(t *testing.T) {
	// §5: Linux context switch time increases linearly with active
	// processes: the goodness scan examines every live task, so the pick
	// cost scales with the task count.
	costAt := func(n int) sim.Duration {
		m := newLinux()
		for i := 0; i < n; i++ {
			m.Spawn("idle", func(p *Proc) { p.block() }) // park forever
		}
		next, cost := m.sched.pick()
		if next == nil {
			t.Fatal("nothing runnable")
		}
		if cost.scanned != n {
			t.Fatalf("scan examined %d tasks, want all %d", cost.scanned, n)
		}
		return m.switchCost(cost)
	}
	c2, c20, c40 := costAt(2), costAt(20), costAt(40)
	if !(c2 < c20 && c20 < c40) {
		t.Fatalf("Linux switch cost not increasing: %v %v %v", c2, c20, c40)
	}
	// Linearity: the 20→40 increment is ~the 2→20 increment scaled.
	d1 := int64(c20 - c2)  // 18 tasks
	d2 := int64(c40 - c20) // 20 tasks
	perTask1 := d1 / 18
	perTask2 := d2 / 20
	if perTask1 != perTask2 {
		t.Fatalf("per-task cost not constant: %v vs %v", perTask1, perTask2)
	}
}

func TestFreeBSDSwitchCostFlat(t *testing.T) {
	costAt := func(n int) sim.Duration {
		m := newFreeBSD()
		for i := 0; i < n; i++ {
			m.Spawn("idle", func(p *Proc) { p.block() })
		}
		_, cost := m.sched.pick()
		if cost.scanned != 0 {
			t.Fatalf("bitmap queues scanned %d tasks; pick must be constant-time", cost.scanned)
		}
		return m.switchCost(cost)
	}
	if costAt(2) != costAt(200) {
		t.Fatal("FreeBSD switch cost must not depend on process count (§5)")
	}
}

func TestSchedulerPickOrderFIFO(t *testing.T) {
	// All three structures preserve ready order for equal priorities, so
	// benchmark interleavings are identical across personalities.
	for _, mk := range []func() *Machine{newLinux, newFreeBSD, newSolaris} {
		m := mk()
		var order []int
		for i := 0; i < 4; i++ {
			i := i
			m.Spawn("w", func(p *Proc) { order = append(order, i) })
		}
		m.Run()
		for i, v := range order {
			if v != i {
				t.Fatalf("%v: run order %v not FIFO", m.OS(), order)
			}
		}
	}
}

func TestSolarisTableOverflowAt32(t *testing.T) {
	// Figure 1: cycling through more than 32 processes misses the mapping
	// resource on every dispatch; at or under 32 it always hits.
	missRate := func(nproc int) float64 {
		tbl := newLRUTable(32)
		misses, total := 0, 0
		// Warm up one full cycle, then measure.
		for lap := 0; lap < 10; lap++ {
			for id := 0; id < nproc; id++ {
				hit := tbl.touch(id)
				if lap > 0 {
					total++
					if !hit {
						misses++
					}
				}
			}
		}
		return float64(misses) / float64(total)
	}
	if r := missRate(32); r != 0 {
		t.Errorf("32-process cyclic miss rate = %v, want 0", r)
	}
	if r := missRate(33); r != 1 {
		t.Errorf("33-process cyclic miss rate = %v, want 1 (LRU cyclic thrash)", r)
	}
}

func TestSolarisLIFOChainGradual(t *testing.T) {
	// Figure 1: the LIFO chain pattern degrades gradually between 32 and
	// ~64 processes because turnaround locality keeps part of the working
	// set resident.
	missRate := func(nproc int) float64 {
		tbl := newLRUTable(32)
		misses, total := 0, 0
		for lap := 0; lap < 10; lap++ {
			// 0,1,...,n-1,n-2,...,1 — one LIFO round trip.
			seq := make([]int, 0, 2*nproc)
			for i := 0; i < nproc; i++ {
				seq = append(seq, i)
			}
			for i := nproc - 2; i >= 1; i-- {
				seq = append(seq, i)
			}
			for _, id := range seq {
				hit := tbl.touch(id)
				if lap > 0 {
					total++
					if !hit {
						misses++
					}
				}
			}
		}
		return float64(misses) / float64(total)
	}
	r40, r64, r128 := missRate(40), missRate(64), missRate(128)
	if !(r40 > 0 && r40 < 1) {
		t.Errorf("LIFO chain at 40 procs should partially hit, got miss rate %v", r40)
	}
	if !(r40 < r64 || r64 < r128) {
		t.Errorf("LIFO miss rate should grow: %v %v %v", r40, r64, r128)
	}
}

func TestShutdownKillsBlockedProcs(t *testing.T) {
	m := newLinux()
	pipe := m.NewPipe()
	m.Spawn("server", func(p *Proc) {
		p.Read(pipe, 1) // never satisfied
		t.Error("server ran past a read that should never complete")
	})
	m.RunDrain()
	if n := m.ActiveProcs(); n != 0 {
		t.Fatalf("ActiveProcs = %d after RunDrain, want 0", n)
	}
}

func TestDeadlockPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Run did not panic on deadlock")
		}
	}()
	m := newLinux()
	pipe := m.NewPipe()
	m.Spawn("stuck", func(p *Proc) { p.Read(pipe, 1) })
	m.Run()
}

func TestChargeAccumulatesUserTime(t *testing.T) {
	m := newLinux()
	var p0 *Proc
	m.Spawn("worker", func(p *Proc) {
		p0 = p
		p.Charge(5 * sim.Millisecond)
		p.Charge(5 * sim.Millisecond)
	})
	m.Run()
	if p0.UserTime != 10*sim.Millisecond {
		t.Fatalf("UserTime = %v, want 10ms", p0.UserTime)
	}
}

func TestForkExecCosts(t *testing.T) {
	m := newSolaris()
	before := m.Now()
	m.Spawn("parent", func(p *Proc) {
		p.ChargeFork()
		p.ChargeExec()
	})
	m.Run()
	k := m.OS().Kernel
	want := k.Fork + k.Exec
	got := m.Now().Sub(before)
	if got < want {
		t.Fatalf("fork+exec advanced %v, want at least %v", got, want)
	}
}

func TestYieldTimeslice(t *testing.T) {
	m := newFreeBSD()
	var order []int
	m.Spawn("a", func(p *Proc) {
		order = append(order, 1)
		p.YieldTimeslice()
		order = append(order, 3)
	})
	m.Spawn("b", func(p *Proc) {
		order = append(order, 2)
	})
	m.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v, want [1 2 3]", order)
	}
}

func TestPipePanicsOnBadSizes(t *testing.T) {
	m := newLinux()
	pipe := m.NewPipe()
	m.Spawn("bad", func(p *Proc) {
		defer func() {
			if recover() == nil {
				t.Error("Write(0) did not panic")
			}
		}()
		p.Write(pipe, 0)
	})
	m.Run()
}

func TestDeterministicMultiProcessRun(t *testing.T) {
	run := func() sim.Time {
		m := newSolaris()
		pipe := m.NewPipe()
		m.Spawn("w", func(p *Proc) {
			for i := 0; i < 50; i++ {
				p.Write(pipe, 3000)
			}
		})
		m.Spawn("r", func(p *Proc) {
			p.ReadFull(pipe, 150000)
		})
		m.Run()
		return m.Now()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("multi-process run not deterministic: %v vs %v", a, b)
	}
}

func TestTraceRecordsTimeline(t *testing.T) {
	m := newSolaris()
	m.EnableTrace(0)
	pipe := m.NewPipe()
	m.Spawn("w", func(p *Proc) { p.Write(pipe, 1) })
	m.Spawn("r", func(p *Proc) { p.ReadFull(pipe, 1) })
	m.Run()
	events := m.TraceEvents()
	if len(events) == 0 {
		t.Fatal("no events recorded")
	}
	kinds := map[string]int{}
	var last sim.Time
	for _, e := range events {
		kinds[e.Kind]++
		if e.When < last {
			t.Fatal("trace out of time order")
		}
		last = e.When
		if e.String() == "" {
			t.Fatal("empty rendering")
		}
	}
	for _, want := range []string{"spawn", "dispatch", "pipe-write", "pipe-read", "exit"} {
		if kinds[want] == 0 {
			t.Errorf("no %q events: %v", want, kinds)
		}
	}
}

func TestTraceOffByDefault(t *testing.T) {
	m := newLinux()
	m.Spawn("w", func(p *Proc) { p.Getpid() })
	m.Run()
	if len(m.TraceEvents()) != 0 {
		t.Fatal("tracing recorded events while disabled")
	}
}

func TestTraceLimitBounds(t *testing.T) {
	m := newLinux()
	m.EnableTrace(5)
	for i := 0; i < 20; i++ {
		m.Spawn("w", func(p *Proc) {})
	}
	m.Run()
	if got := len(m.TraceEvents()); got > 5 {
		t.Fatalf("trace kept %d events, limit 5", got)
	}
}

func TestTraceRingDropsOldest(t *testing.T) {
	m := newLinux()
	m.EnableTrace(5)
	for i := 0; i < 20; i++ {
		m.Spawn("w", func(p *Proc) {})
	}
	m.Run()
	events := m.TraceEvents()
	if len(events) != 5 {
		t.Fatalf("ring kept %d events, want exactly 5", len(events))
	}
	// With 20 spawns then 20 dispatch/exit pairs, the survivors must be
	// the 5 newest events: the last of them an exit, all in time order,
	// and none of the early spawn events (which happen at T+0 before any
	// dispatch cost accrues) still present once later events exist.
	var last sim.Time
	for i, e := range events {
		if e.When < last {
			t.Fatalf("ring out of time order at %d: %v", i, events)
		}
		last = e.When
	}
	if events[len(events)-1].Kind != "exit" {
		t.Errorf("newest surviving event is %q, want exit", events[len(events)-1].Kind)
	}
	for _, e := range events {
		if e.Kind == "spawn" {
			t.Errorf("oldest events (spawn) not dropped: %v", events)
		}
	}
}

func TestTraceRingDoesNotReallocate(t *testing.T) {
	m := newLinux()
	m.EnableTrace(8)
	pipe := m.NewPipe()
	m.Spawn("w", func(p *Proc) {
		for i := 0; i < 200; i++ {
			p.Write(pipe, 100)
		}
	})
	m.Spawn("r", func(p *Proc) { p.ReadFull(pipe, 20000) })
	before := cap(m.traceBuf)
	m.Run()
	if cap(m.traceBuf) != before {
		t.Fatalf("ring reallocated: cap %d -> %d", before, cap(m.traceBuf))
	}
	if len(m.TraceEvents()) != 8 {
		t.Fatalf("ring holds %d events, want 8", len(m.TraceEvents()))
	}
}

// TestPhaseSumsEqualElapsed holds the attribution identity: every clock
// advance made through the kernel is tagged with a phase, so the ledger
// sums to exactly the elapsed virtual time.
func TestPhaseSumsEqualElapsed(t *testing.T) {
	for _, mk := range []func() *Machine{newLinux, newFreeBSD, newSolaris} {
		m := mk()
		pipe := m.NewPipe()
		m.Spawn("w", func(p *Proc) {
			p.ChargeFork()
			p.ChargeExec()
			p.Charge(5 * sim.Microsecond)
			for i := 0; i < 20; i++ {
				p.Write(pipe, 3000)
			}
		})
		m.Spawn("r", func(p *Proc) {
			p.ReadFull(pipe, 60000)
			p.Getpid()
		})
		m.Run()
		var sum sim.Duration
		for ph := Phase(0); ph < NumPhases; ph++ {
			sum += m.PhaseTime(ph)
		}
		if elapsed := m.Now().Sub(0); sum != elapsed {
			t.Errorf("%s: phase sum %v != elapsed %v (breakdown %v)",
				m.OS().Name, sum, elapsed, m.PhaseBreakdown())
		}
		if m.PhaseTime(PhaseDispatch) == 0 || m.PhaseTime(PhaseCopy) == 0 ||
			m.PhaseTime(PhaseSyscall) == 0 || m.PhaseTime(PhaseWakeup) == 0 ||
			m.PhaseTime(PhaseProcess) == 0 || m.PhaseTime(PhaseUser) == 0 {
			t.Errorf("%s: expected every phase nonzero: %v", m.OS().Name, m.PhaseBreakdown())
		}
	}
}

func TestObserveRecordsSpans(t *testing.T) {
	m := newLinux()
	rec := obs.NewRecorder(m.Clock())
	m.Observe(rec)
	pipe := m.NewPipe()
	total := pipe.Capacity() * 2 // overfill so the writer blocks and gets woken
	m.Spawn("w", func(p *Proc) { p.Write(pipe, total) })
	m.Spawn("r", func(p *Proc) { p.ReadFull(pipe, total) })
	m.Run()

	byName := map[string]int{}
	begins, ends := 0, 0
	for _, e := range rec.Events() {
		switch e.Kind {
		case obs.EvBegin:
			begins++
			byName[e.Name]++
		case obs.EvEnd:
			ends++
		}
	}
	if begins == 0 || begins != ends {
		t.Fatalf("unbalanced spans: %d begins, %d ends", begins, ends)
	}
	for _, want := range []string{"dispatch", "syscall", "copy", "wakeup", "run"} {
		if byName[want] == 0 {
			t.Errorf("no %q spans recorded: %v", want, byName)
		}
	}
	// each proc has its own track plus main + kernel
	if tracks := rec.Tracks(); len(tracks) != 4 {
		t.Errorf("tracks = %v, want main/kernel/pid1/pid2", tracks)
	}
	reg := obs.NewRegistry()
	m.FoldMetrics(reg, "kernel.")
	if v, ok := reg.Snapshot().Get("kernel.context_switches"); !ok || v != float64(m.Switches()) {
		t.Errorf("folded switches = %v %v, want %d", v, ok, m.Switches())
	}
}

// TestObserveDoesNotPerturbTiming holds that attaching observability
// never changes simulated results.
func TestObserveDoesNotPerturbTiming(t *testing.T) {
	run := func(observe bool) sim.Time {
		m := newSolaris()
		if observe {
			m.Observe(obs.NewRecorder(m.Clock()))
			m.EnableTrace(16)
		}
		pipe := m.NewPipe()
		m.Spawn("w", func(p *Proc) {
			for i := 0; i < 50; i++ {
				p.Write(pipe, 3000)
			}
		})
		m.Spawn("r", func(p *Proc) { p.ReadFull(pipe, 150000) })
		m.Run()
		return m.Now()
	}
	if plain, observed := run(false), run(true); plain != observed {
		t.Fatalf("observability changed the result: %v vs %v", plain, observed)
	}
}

func TestRunCheckedSurfacesDeadlockError(t *testing.T) {
	m := newLinux()
	rec := obs.NewRecorder(m.Clock())
	m.Observe(rec)
	pipe := m.NewPipe()
	m.Spawn("stuck-reader", func(p *Proc) { p.Read(pipe, 1) })
	m.Spawn("worker", func(p *Proc) { p.Charge(2 * sim.Millisecond) })

	err := m.RunChecked()
	if err == nil {
		t.Fatal("RunChecked returned nil on a deadlocked machine")
	}
	var d *sim.DeadlockError
	if !errors.As(err, &d) {
		t.Fatalf("RunChecked returned %T, want *sim.DeadlockError", err)
	}
	if len(d.Blocked) != 1 || !strings.Contains(d.Blocked[0], "stuck-reader") {
		t.Errorf("Blocked = %v, want the stuck reader", d.Blocked)
	}
	if d.Now == 0 {
		t.Error("deadlock carries no virtual timestamp")
	}
	if !strings.Contains(err.Error(), "deadlock") {
		t.Errorf("error line %q does not say deadlock", err)
	}
	// The run was observed, so the diagnostic dump shows each track's
	// last activity instead of leaving the user with a bare one-liner.
	if !strings.Contains(d.Dump, "last activity per track") ||
		!strings.Contains(d.Dump, "stuck-reader") {
		t.Errorf("dump missing track activity:\n%s", d.Dump)
	}
}

func TestRunCheckedCleanRunReturnsNil(t *testing.T) {
	m := newLinux()
	m.Spawn("worker", func(p *Proc) { p.Charge(sim.Millisecond) })
	if err := m.RunChecked(); err != nil {
		t.Fatalf("RunChecked = %v on a clean run", err)
	}
}
