// Package kernel simulates the operating system kernel of the benchmarking
// platform: processes, the scheduler, system-call dispatch, and pipes.
//
// Simulated processes are ordinary Go functions run on goroutines, but the
// kernel enforces strict single-threading with a baton: exactly one
// simulated process executes at any moment, and control returns to the
// kernel whenever the process blocks or exits. Combined with the virtual
// clock, this makes every simulation deterministic while letting benchmark
// programs (a ring of token-passing processes, a pipe bandwidth test) be
// written the way the originals were written against the real kernels.
//
// The scheduler implements the structural differences §5 of the paper
// explains: Linux 1.2 scans an O(n) task list on every switch, 4.4BSD picks
// from constant-time run queues, and Solaris pays a high fixed dispatch
// cost plus a 32-entry per-process mapping resource whose overflow causes
// the jump at 32 processes in Figure 1.
package kernel

import (
	"fmt"

	"repro/internal/cpu"
	"repro/internal/osprofile"
	"repro/internal/sim"
)

// Machine is one simulated computer running one operating system
// personality. It owns the virtual clock and the process table.
//
// Machine is not safe for concurrent use: callers drive it from a single
// goroutine, and simulated processes run one at a time under the kernel's
// baton.
type Machine struct {
	clock sim.Clock
	cpu   cpu.CPU
	os    *osprofile.Profile
	rng   *sim.RNG

	procs    []*Proc
	sched    scheduler
	current  *Proc
	lastRun  *Proc
	nextPID  int
	switches uint64

	// KernelTime accumulates time spent in kernel activities, for
	// diagnostics.
	KernelTime sim.Duration

	// tracing state (see trace.go).
	tracing    bool
	traceLimit int
	traceBuf   []TraceEvent
}

// NewMachine builds a machine running the given OS personality. The RNG
// seeds stochastic elements (none in the kernel proper, but subsystems
// fork from it).
func NewMachine(c cpu.CPU, os *osprofile.Profile, rng *sim.RNG) *Machine {
	m := &Machine{cpu: c, os: os, rng: rng, nextPID: 1}
	m.sched = newScheduler(m)
	return m
}

// OS returns the machine's operating-system personality.
func (m *Machine) OS() *osprofile.Profile { return m.os }

// CPU returns the machine's processor description.
func (m *Machine) CPU() cpu.CPU { return m.cpu }

// Now returns the current virtual time.
func (m *Machine) Now() sim.Time { return m.clock.Now() }

// Clock exposes the machine clock so subsystems (file system, network)
// can charge time when invoked outside a simulated process.
func (m *Machine) Clock() *sim.Clock { return &m.clock }

// RNG returns the machine's random stream.
func (m *Machine) RNG() *sim.RNG { return m.rng }

// Switches returns the number of context switches performed so far.
func (m *Machine) Switches() uint64 { return m.switches }

// ActiveProcs returns the number of live (not yet exited) processes —
// the n in Linux's O(n) scheduler scan.
func (m *Machine) ActiveProcs() int {
	n := 0
	for _, p := range m.procs {
		if p.state != procDone {
			n++
		}
	}
	return n
}

// charge advances the virtual clock, attributing the time to the kernel.
func (m *Machine) charge(d sim.Duration) {
	m.clock.Advance(d)
	m.KernelTime += d
}

// switchCost converts one dispatch's pick mechanics into time.
func (m *Machine) switchCost(c pickCost) sim.Duration {
	k := &m.os.Kernel
	cost := k.CtxBase
	cost += sim.Duration(int64(k.CtxPerTask) * int64(c.scanned))
	if c.tableMiss {
		cost += k.CtxTableMiss
	}
	return cost
}

// schedule runs the dispatcher loop: pick the next runnable process via
// the personality's scheduler structure, charge the context-switch cost
// when control actually changes hands, and hand it the baton. It returns
// when no process is runnable.
func (m *Machine) schedule() {
	for {
		next, cost := m.sched.pick()
		if next == nil {
			return
		}
		if next.state != procRunnable {
			continue
		}
		if next != m.lastRun {
			d := m.switchCost(cost)
			m.charge(d)
			m.switches++
			m.trace("dispatch", next.pid, "%s (cost %v, scanned %d, miss %v)",
				next.name, d, cost.scanned, cost.tableMiss)
		}
		m.lastRun = next
		m.current = next
		next.state = procRunning
		next.resume <- struct{}{}
		<-next.yielded
		m.current = nil
	}
}

// Run starts the machine: every spawned process runs until it exits or
// blocks forever. Run panics if processes remain blocked with nothing
// runnable and Shutdown was not requested — in a benchmark that is always
// a deadlock bug.
func (m *Machine) Run() {
	m.schedule()
	for _, p := range m.procs {
		if p.state == procBlocked {
			panic(fmt.Sprintf("kernel: deadlock: process %d (%s) blocked with empty run queue", p.pid, p.name))
		}
	}
}

// RunDrain is Run for workloads that intentionally leave blocked
// processes behind (a server waiting for requests that will never come).
// Blocked processes are killed instead of panicking.
func (m *Machine) RunDrain() {
	m.schedule()
	m.Shutdown()
}

// Shutdown kills every live process. Blocked processes are resumed with a
// kill signal that unwinds their goroutines; runnable ones are killed
// before running again.
func (m *Machine) Shutdown() {
	for _, p := range m.procs {
		if p.state == procDone {
			continue
		}
		p.killed = true
		if p.state == procBlocked {
			p.state = procRunnable
			p.resume <- struct{}{}
			<-p.yielded
		}
	}
	// Drain any that were runnable in the queue.
	for {
		next, _ := m.sched.pick()
		if next == nil {
			return
		}
		if next.state != procRunnable {
			continue
		}
		next.resume <- struct{}{}
		<-next.yielded
	}
}

// ready marks p runnable and enqueues it with the scheduler.
func (m *Machine) ready(p *Proc) {
	if p.state == procDone {
		panic("kernel: readying an exited process")
	}
	p.state = procRunnable
	m.sched.enqueue(p)
}

// lruTable is the Solaris dispatch-resource model used by
// preemptiveSched: a fixed-capacity LRU set of process identities. A
// dispatch whose target is absent pays a reload penalty. With a cyclic ring of more than 32 processes every
// dispatch misses (the steep Figure 1 rise); with a LIFO chain the
// turnaround locality lets part of the working set survive, so the rise
// past 32 is gradual until about double the capacity (Figure 1's
// Solaris-LIFO curve).
type lruTable struct {
	capacity int
	order    []int // most recent last
}

func newLRUTable(capacity int) *lruTable {
	return &lruTable{capacity: capacity}
}

// touch looks up id, promoting it to most-recent. It reports whether the
// id was present (hit).
func (t *lruTable) touch(id int) bool {
	for i, v := range t.order {
		if v == id {
			t.order = append(t.order[:i], t.order[i+1:]...)
			t.order = append(t.order, id)
			return true
		}
	}
	t.order = append(t.order, id)
	if len(t.order) > t.capacity {
		t.order = t.order[1:]
	}
	return false
}
