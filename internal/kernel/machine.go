// Package kernel simulates the operating system kernel of the benchmarking
// platform: processes, the scheduler, system-call dispatch, and pipes.
//
// Simulated processes are ordinary Go functions run on goroutines, but the
// kernel enforces strict single-threading with a baton: exactly one
// simulated process executes at any moment, and control returns to the
// kernel whenever the process blocks or exits. Combined with the virtual
// clock, this makes every simulation deterministic while letting benchmark
// programs (a ring of token-passing processes, a pipe bandwidth test) be
// written the way the originals were written against the real kernels.
//
// The scheduler implements the structural differences §5 of the paper
// explains: Linux 1.2 scans an O(n) task list on every switch, 4.4BSD picks
// from constant-time run queues, and Solaris pays a high fixed dispatch
// cost plus a 32-entry per-process mapping resource whose overflow causes
// the jump at 32 processes in Figure 1.
package kernel

import (
	"fmt"
	"strings"

	"repro/internal/cpu"
	"repro/internal/obs"
	"repro/internal/osprofile"
	"repro/internal/sim"
)

// Phase classifies where a machine's virtual time goes, mirroring the
// paper's Figure 1 decomposition of a context switch: dispatcher
// mechanics, system-call entry/exit, data copies, wakeups, process
// creation, and user computation. The ledger is always on (an array add
// per charge), so `pentiumbench metrics` can attribute any kernel
// experiment without re-running it traced; by construction every clock
// advance made through the kernel is tagged, so the phase sums equal the
// machine's total elapsed time exactly.
type Phase int

const (
	// PhaseDispatch is context-switch mechanics: run-queue scan or pick
	// plus the dispatch-table reload (Solaris).
	PhaseDispatch Phase = iota
	// PhaseSyscall is system-call entry/exit and argument validation.
	PhaseSyscall
	// PhaseCopy is user/kernel data movement (pipe copies).
	PhaseCopy
	// PhaseWakeup is waking blocked peers.
	PhaseWakeup
	// PhaseProcess is process creation work (fork, exec).
	PhaseProcess
	// PhaseUser is time the benchmark programs charge for their own
	// computation.
	PhaseUser
	// NumPhases sizes phase-indexed arrays.
	NumPhases
)

// String names the phase for tables and metric keys.
func (ph Phase) String() string {
	switch ph {
	case PhaseDispatch:
		return "dispatch"
	case PhaseSyscall:
		return "syscall"
	case PhaseCopy:
		return "copy"
	case PhaseWakeup:
		return "wakeup"
	case PhaseProcess:
		return "process"
	case PhaseUser:
		return "user"
	}
	return fmt.Sprintf("Phase(%d)", int(ph))
}

// Machine is one simulated computer running one operating system
// personality. It owns the virtual clock and the process table.
//
// Machine is not safe for concurrent use: callers drive it from a single
// goroutine, and simulated processes run one at a time under the kernel's
// baton.
type Machine struct {
	clock sim.Clock
	cpu   cpu.CPU
	os    *osprofile.Profile
	rng   *sim.RNG

	procs    []*Proc
	sched    scheduler
	current  *Proc
	lastRun  *Proc
	nextPID  int
	switches uint64

	// idle returns the baton to the driver goroutine when no process is
	// runnable (see schedule: under the switch-to protocol the driver is
	// out of the dispatch loop entirely).
	idle chan struct{}
	// draining flips Shutdown to the driver-mediated resume/yielded
	// handshake, which unwinds killed processes one at a time.
	draining bool

	// KernelTime accumulates time spent in kernel activities, for
	// diagnostics.
	KernelTime sim.Duration

	// phases is the always-on cycle-attribution ledger (see Phase).
	phases [NumPhases]sim.Duration

	// tracing state (see trace.go).
	tracing    bool
	traceLimit int
	traceBuf   []TraceEvent
	traceHead  int

	// obs integration (see Observe).
	rec         *obs.Recorder
	kernelTrack obs.TrackID

	// Time-series handles, nil unless SetSampler attached them. The
	// runnable gauge walks the process table, so it is only sampled when
	// a sampler is live — the unsampled path pays one nil check.
	tsSwitch   *obs.SeriesCounter
	tsRunnable *obs.SeriesGauge
}

// NewMachine builds a machine running the given OS personality. The RNG
// seeds stochastic elements (none in the kernel proper, but subsystems
// fork from it). A personality the kernel cannot schedule for (a
// hand-edited profile with an unknown scheduler kind) is a returned
// error, never a panic.
func NewMachine(c cpu.CPU, os *osprofile.Profile, rng *sim.RNG) (*Machine, error) {
	m := &Machine{cpu: c, os: os, rng: rng, nextPID: 1, idle: make(chan struct{})}
	sched, err := newScheduler(m)
	if err != nil {
		return nil, err
	}
	m.sched = sched
	return m, nil
}

// MustMachine is NewMachine for the built-in personalities, whose
// scheduler kinds are compile-time constants.
func MustMachine(c cpu.CPU, os *osprofile.Profile, rng *sim.RNG) *Machine {
	m, err := NewMachine(c, os, rng)
	if err != nil {
		panic(err)
	}
	return m
}

// OS returns the machine's operating-system personality.
func (m *Machine) OS() *osprofile.Profile { return m.os }

// CPU returns the machine's processor description.
func (m *Machine) CPU() cpu.CPU { return m.cpu }

// Now returns the current virtual time.
func (m *Machine) Now() sim.Time { return m.clock.Now() }

// Clock exposes the machine clock so subsystems (file system, network)
// can charge time when invoked outside a simulated process.
func (m *Machine) Clock() *sim.Clock { return &m.clock }

// RNG returns the machine's random stream.
func (m *Machine) RNG() *sim.RNG { return m.rng }

// Switches returns the number of context switches performed so far.
func (m *Machine) Switches() uint64 { return m.switches }

// ActiveProcs returns the number of live (not yet exited) processes —
// the n in Linux's O(n) scheduler scan.
func (m *Machine) ActiveProcs() int {
	n := 0
	for _, p := range m.procs {
		if p.state != procDone {
			n++
		}
	}
	return n
}

// PhaseTime returns the accumulated time attributed to one phase.
func (m *Machine) PhaseTime(ph Phase) sim.Duration { return m.phases[ph] }

// PhaseBreakdown returns the full attribution ledger, indexed by Phase.
// The entries sum to exactly the machine's elapsed virtual time.
func (m *Machine) PhaseBreakdown() [NumPhases]sim.Duration { return m.phases }

// FoldMetrics adds the machine's counters to a registry under the given
// name prefix ("kernel." conventionally).
func (m *Machine) FoldMetrics(reg *obs.Registry, prefix string) {
	if reg == nil {
		return
	}
	reg.Counter(prefix + "context_switches").Add(float64(m.switches))
	reg.Counter(prefix + "processes").Add(float64(len(m.procs)))
	for ph := Phase(0); ph < NumPhases; ph++ {
		reg.Counter(prefix + "phase_us." + ph.String()).Add(m.phases[ph].Microseconds())
	}
}

// SetSampler attaches a virtual-time time-series sampler: per window it
// records context switches (kernel.switches) and samples the count of
// runnable-or-running processes (kernel.runnable) at every ready/dispatch
// transition. Nil detaches; per-window kernel.switches sums equal
// Switches() exactly.
func (m *Machine) SetSampler(smp *obs.Sampler) {
	if smp == nil {
		m.tsSwitch, m.tsRunnable = nil, nil
		return
	}
	m.tsSwitch = smp.Counter("kernel.switches")
	m.tsRunnable = smp.Gauge("kernel.runnable")
}

// sampleRunnable records the current runnable-or-running process count.
// The O(procs) walk only happens with a sampler attached.
func (m *Machine) sampleRunnable() {
	if m.tsRunnable == nil {
		return
	}
	n := 0
	for _, p := range m.procs {
		if p.state == procRunnable || p.state == procRunning {
			n++
		}
	}
	m.tsRunnable.Set(m.clock.Now(), int64(n))
}

// charge advances the virtual clock, attributing the time to the kernel
// and to one ledger phase.
func (m *Machine) charge(ph Phase, d sim.Duration) {
	m.clock.Advance(d)
	m.KernelTime += d
	m.phases[ph] += d
}

// chargeSpan is charge wrapped in an obs span on the given track, so the
// Chrome trace shows the charge as a named interval. With no recorder
// attached it costs the same two nil checks as a plain charge.
func (m *Machine) chargeSpan(track obs.TrackID, name string, ph Phase, d sim.Duration) {
	if m.rec != nil {
		m.rec.Begin(track, name)
	}
	m.charge(ph, d)
	if m.rec != nil {
		m.rec.End(track, name, d.Microseconds())
	}
}

// switchCost converts one dispatch's pick mechanics into time.
func (m *Machine) switchCost(c pickCost) sim.Duration {
	k := &m.os.Kernel
	cost := k.CtxBase
	cost += sim.Duration(int64(k.CtxPerTask) * int64(c.scanned))
	if c.tableMiss {
		cost += k.CtxTableMiss
	}
	return cost
}

// dispatchNext picks the next runnable process via the personality's
// scheduler structure, charges the context-switch cost when control
// actually changes hands, and marks it running (opening its "run" span).
// It returns nil when no process is runnable. The caller hands over the
// baton by sending on the returned process's resume channel — unless the
// pick is the caller itself, which just keeps running.
func (m *Machine) dispatchNext() *Proc {
	for {
		next, cost := m.sched.pick()
		if next == nil {
			m.current = nil
			m.sampleRunnable()
			return nil
		}
		if next.state != procRunnable {
			continue
		}
		if next != m.lastRun {
			d := m.switchCost(cost)
			m.chargeSpan(m.kernelTrack, "dispatch", PhaseDispatch, d)
			m.switches++
			m.tsSwitch.Inc(m.clock.Now())
			if m.observing() {
				m.trace("dispatch", next.pid, "%s (cost %v, scanned %d, miss %v)",
					next.name, d, cost.scanned, cost.tableMiss)
			}
		}
		m.lastRun = next
		m.current = next
		next.state = procRunning
		m.sampleRunnable()
		if m.rec != nil {
			m.rec.Begin(next.track, "run")
		}
		return next
	}
}

// passBaton transfers control out of the calling process context using
// the switch-to protocol: the yielding process runs the scheduler pick
// inline and resumes its successor directly — one channel handoff per
// context switch instead of the two a mediating kernel goroutine costs.
// When the pick is the caller itself (a timeslice yield with nothing
// else runnable) it reports true and the caller simply keeps running.
// When nothing is runnable the machine parks: the baton returns to the
// driver goroutine waiting in schedule.
//
// Determinism is untouched: the baton still enforces that exactly one
// goroutine executes at a time, every scheduler/clock/ledger access is
// serialized by the chain of channel handoffs (each send establishes a
// happens-before edge to the next runner), and the dispatch charges and
// span events are emitted in exactly the order the mediated loop
// produced.
func (m *Machine) passBaton(self *Proc) (keepRunning bool) {
	next := m.dispatchNext()
	if next == nil {
		m.idle <- struct{}{}
		return false
	}
	if next == self {
		return true
	}
	next.resume <- struct{}{}
	return false
}

// schedule starts the dispatcher: the driver hands the baton to the
// first runnable process and waits until the machine goes idle (no
// process runnable). Processes pass the baton among themselves.
func (m *Machine) schedule() {
	next := m.dispatchNext()
	if next == nil {
		return
	}
	next.resume <- struct{}{}
	<-m.idle
}

// Run starts the machine: every spawned process runs until it exits or
// blocks forever. Run panics with a *sim.DeadlockError if processes
// remain blocked with nothing runnable and Shutdown was not requested —
// in a benchmark that is always a deadlock bug. The panic carries a
// diagnostic dump built from the machine's span buffer; callers that
// want an error instead use RunChecked, and the CLI recovers the typed
// value at its dispatch boundary to print the dump rather than a Go
// stack trace.
func (m *Machine) Run() {
	m.schedule()
	var blocked []string
	for _, p := range m.procs {
		if p.state == procBlocked {
			blocked = append(blocked, fmt.Sprintf("%d (%s)", p.pid, p.name))
		}
	}
	if len(blocked) > 0 {
		panic(&sim.DeadlockError{Now: m.clock.Now(), Blocked: blocked, Dump: m.deadlockDump()})
	}
}

// RunChecked is Run with the deadlock watchdog surfaced as an error
// instead of a panic. Other panics (internal invariant violations)
// still propagate.
func (m *Machine) RunChecked() (err error) {
	defer func() {
		if r := recover(); r != nil {
			if dl, ok := r.(*sim.DeadlockError); ok {
				err = dl
				return
			}
			panic(r)
		}
	}()
	m.Run()
	return nil
}

// deadlockDump renders the tail of the machine's span buffer: the most
// recent events on each track, so a deadlock report shows what every
// timeline was last doing. Empty when the run is not observed.
func (m *Machine) deadlockDump() string {
	if m.rec == nil {
		return ""
	}
	events := m.rec.Events()
	if len(events) == 0 {
		return ""
	}
	const perTrack = 4
	tracks := m.rec.Tracks()
	var b strings.Builder
	fmt.Fprintf(&b, "last activity per track (%d events buffered, %d dropped):",
		len(events), m.rec.Dropped())
	for id, name := range tracks {
		var tail []obs.Event
		for _, e := range events {
			if int(e.Track) == id {
				tail = append(tail, e)
				if len(tail) > perTrack {
					tail = tail[1:]
				}
			}
		}
		if len(tail) == 0 {
			continue
		}
		fmt.Fprintf(&b, "\n  %s:", name)
		for _, e := range tail {
			fmt.Fprintf(&b, "\n    t=%v %s %s", sim.Duration(e.When).Std(), e.Kind, e.Name)
		}
	}
	return b.String()
}

// RunDrain is Run for workloads that intentionally leave blocked
// processes behind (a server waiting for requests that will never come).
// Blocked processes are killed instead of panicking.
func (m *Machine) RunDrain() {
	m.schedule()
	m.Shutdown()
}

// Shutdown kills every live process. Blocked processes are resumed with a
// kill signal that unwinds their goroutines; runnable ones are killed
// before running again.
func (m *Machine) Shutdown() {
	m.draining = true
	defer func() { m.draining = false }()
	for _, p := range m.procs {
		if p.state == procDone {
			continue
		}
		p.killed = true
		if p.state == procBlocked {
			p.state = procRunnable
			p.resume <- struct{}{}
			<-p.yielded
		}
	}
	// Drain any that were runnable in the queue.
	for {
		next, _ := m.sched.pick()
		if next == nil {
			return
		}
		if next.state != procRunnable {
			continue
		}
		next.resume <- struct{}{}
		<-next.yielded
	}
}

// ready marks p runnable and enqueues it with the scheduler.
func (m *Machine) ready(p *Proc) {
	if p.state == procDone {
		panic("kernel: readying an exited process")
	}
	p.state = procRunnable
	m.sched.enqueue(p)
	m.sampleRunnable()
}

// lruTable is the Solaris dispatch-resource model used by
// preemptiveSched: a fixed-capacity LRU set of process identities. A
// dispatch whose target is absent pays a reload penalty. With a cyclic ring of more than 32 processes every
// dispatch misses (the steep Figure 1 rise); with a LIFO chain the
// turnaround locality lets part of the working set survive, so the rise
// past 32 is gradual until about double the capacity (Figure 1's
// Solaris-LIFO curve).
type lruTable struct {
	capacity int
	order    []int // most recent last
}

func newLRUTable(capacity int) *lruTable {
	return &lruTable{capacity: capacity}
}

// touch looks up id, promoting it to most-recent. It reports whether the
// id was present (hit).
func (t *lruTable) touch(id int) bool {
	for i, v := range t.order {
		if v == id {
			t.order = append(t.order[:i], t.order[i+1:]...)
			t.order = append(t.order, id)
			return true
		}
	}
	t.order = append(t.order, id)
	if len(t.order) > t.capacity {
		t.order = t.order[1:]
	}
	return false
}
