package kernel

import (
	"errors"
	"testing"

	"repro/internal/obs"
	"repro/internal/osprofile"
	"repro/internal/sim"
)

// lockWorkerOps is the L1/L2 worker body: think, acquire, hold, release.
func lockWorkerOps(l *Lock, think, crit sim.Duration) []Op {
	return []Op{
		{Kind: OpThink, D: think},
		{Kind: OpLock, L: l},
		{Kind: OpThink, D: crit},
		{Kind: OpUnlock, L: l},
	}
}

// runContention builds and runs one lock-contention machine.
func runContention(p *osprofile.Profile, kind LockKind, ncpu, nthreads, iters int) (*SMPMachine, *Lock) {
	m := MustSMPMachine(p, ncpu)
	l := m.NewLock(kind)
	for i := 0; i < nthreads; i++ {
		// Stagger thinks so spinners do not phase-lock (same trick the
		// bench layer uses).
		m.SpawnThread("worker", lockWorkerOps(l, 5*sim.Microsecond+sim.Duration(i)*137, 20*sim.Microsecond), iters)
	}
	m.Run()
	return m, l
}

// TestSMPLedgerExactness is the house invariant: per-CPU busy + idle +
// spin equals elapsed to the nanosecond, for every personality, lock
// kind, and CPU count, and the lock flow counters balance.
func TestSMPLedgerExactness(t *testing.T) {
	for _, p := range osprofile.All() {
		for _, kind := range []LockKind{SpinLock, SleepLock} {
			for _, ncpu := range []int{1, 2, 3, 8} {
				m, l := runContention(p, kind, ncpu, ncpu, 50)
				elapsed := m.Elapsed()
				if elapsed <= 0 {
					t.Fatalf("%s %s ncpu=%d: no elapsed time", p, kind, ncpu)
				}
				for c := 0; c < ncpu; c++ {
					busy, idle, spin := m.Ledger(c)
					if sum := busy + idle + spin; sum != elapsed {
						t.Errorf("%s %s ncpu=%d cpu %d: busy %v + idle %v + spin %v = %v, want elapsed %v",
							p, kind, ncpu, c, busy, idle, spin, sum, elapsed)
					}
				}
				wantOps := uint64(ncpu * 50)
				if l.Acquires != wantOps || l.Releases != wantOps {
					t.Errorf("%s %s ncpu=%d: acquires/releases %d/%d, want %d",
						p, kind, ncpu, l.Acquires, l.Releases, wantOps)
				}
				if l.Contended+l.Uncontended != l.Acquires {
					t.Errorf("%s %s ncpu=%d: contended %d + uncontended %d != acquires %d",
						p, kind, ncpu, l.Contended, l.Uncontended, l.Acquires)
				}
				if l.Blocks != l.Wakeups {
					t.Errorf("%s %s ncpu=%d: blocks %d != wakeups %d", p, kind, ncpu, l.Blocks, l.Wakeups)
				}
				if l.WaitHist.N() != l.Contended {
					t.Errorf("%s %s ncpu=%d: wait observations %d != contended %d",
						p, kind, ncpu, l.WaitHist.N(), l.Contended)
				}
				if kind == SpinLock && l.Blocks != 0 {
					t.Errorf("%s spin ncpu=%d: spinlock blocked %d times", p, ncpu, l.Blocks)
				}
			}
		}
	}
}

// TestSMPContentionHappens sanity-checks that multi-CPU runs actually
// contend: with as many workers as CPUs and a critical section four
// times the think time, most acquisitions must wait.
func TestSMPContentionHappens(t *testing.T) {
	for _, kind := range []LockKind{SpinLock, SleepLock} {
		_, l := runContention(osprofile.Linux128(), kind, 8, 8, 50)
		if l.Contended == 0 {
			t.Fatalf("%s: eight workers on one lock never contended", kind)
		}
		if kind == SleepLock && l.Blocks == 0 {
			t.Fatal("sleep lock contended without blocking")
		}
	}
}

// TestSMPDeterministic pins that two identical runs produce identical
// counters — the machine is a pure function of its inputs.
func TestSMPDeterministic(t *testing.T) {
	m1, l1 := runContention(osprofile.Solaris24(), SpinLock, 8, 8, 100)
	m2, l2 := runContention(osprofile.Solaris24(), SpinLock, 8, 8, 100)
	if m1.Elapsed() != m2.Elapsed() || m1.Switches() != m2.Switches() || m1.Steals() != m2.Steals() {
		t.Fatalf("identical runs diverged: elapsed %v/%v switches %d/%d steals %d/%d",
			m1.Elapsed(), m2.Elapsed(), m1.Switches(), m2.Switches(), m1.Steals(), m2.Steals())
	}
	if l1.Contended != l2.Contended || l1.WaitHist.Sum() != l2.WaitHist.Sum() {
		t.Fatalf("identical runs diverged: contended %d/%d wait sums %d/%d",
			l1.Contended, l2.Contended, l1.WaitHist.Sum(), l2.WaitHist.Sum())
	}
}

// TestSMPWorkStealing pins the per-CPU queue layout: under Solaris'
// per-CPU dispatch queues an idle CPU steals from the longest queue and
// pays the personality's steal cost.
func TestSMPWorkStealing(t *testing.T) {
	p := osprofile.Solaris24()
	if !p.Kernel.PerCPUQueues {
		t.Fatal("Solaris personality lost its per-CPU queues")
	}
	m := MustSMPMachine(p, 2)
	// Homes alternate by spawn order: t1, t3 land on CPU 0, t2 on CPU 1.
	// CPU 1 finishes its short thread first and steals t3 from CPU 0.
	m.SpawnThread("long-a", []Op{{Kind: OpThink, D: 100 * sim.Microsecond}}, 1)
	m.SpawnThread("short", []Op{{Kind: OpThink, D: 1 * sim.Microsecond}}, 1)
	m.SpawnThread("long-b", []Op{{Kind: OpThink, D: 100 * sim.Microsecond}}, 1)
	m.Run()
	if m.Steals() == 0 {
		t.Fatal("idle CPU never stole from the loaded CPU's queue")
	}
	// A global-queue personality on the same workload steals nothing.
	g := MustSMPMachine(osprofile.Linux128(), 2)
	g.SpawnThread("long-a", []Op{{Kind: OpThink, D: 100 * sim.Microsecond}}, 1)
	g.SpawnThread("short", []Op{{Kind: OpThink, D: 1 * sim.Microsecond}}, 1)
	g.SpawnThread("long-b", []Op{{Kind: OpThink, D: 100 * sim.Microsecond}}, 1)
	g.Run()
	if g.Steals() != 0 {
		t.Fatalf("global-queue machine reported %d steals", g.Steals())
	}
}

// TestSMPDeadlockPanics pins the failure mode: a thread re-acquiring a
// sleep lock it holds blocks forever, and Run reports it as a
// *sim.DeadlockError instead of hanging or finishing silently.
func TestSMPDeadlockPanics(t *testing.T) {
	m := MustSMPMachine(osprofile.Linux128(), 2)
	l := m.NewLock(SleepLock)
	m.SpawnThread("self-deadlock", []Op{
		{Kind: OpLock, L: l},
		{Kind: OpLock, L: l},
		{Kind: OpUnlock, L: l},
	}, 1)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("deadlocked run finished without panicking")
		}
		var derr *sim.DeadlockError
		err, ok := r.(error)
		if !ok || !errors.As(err, &derr) {
			t.Fatalf("panic value %v (%T), want *sim.DeadlockError", r, r)
		}
	}()
	m.Run()
}

// TestSMPRCU pins the read-mostly path: a writer synchronizing against
// an in-flight reader waits out the grace period on-CPU (the wait lands
// in the spin ledger), and the ledgers stay exact.
func TestSMPRCU(t *testing.T) {
	p := osprofile.FreeBSD205()
	m := MustSMPMachine(p, 2)
	r := m.NewRCU()
	m.SpawnThread("reader", []Op{{Kind: OpRCURead, R: r, D: 100 * sim.Microsecond}}, 1)
	m.SpawnThread("writer", []Op{
		{Kind: OpThink, D: 1 * sim.Microsecond},
		{Kind: OpRCUSync, R: r},
	}, 1)
	elapsed := m.Run()
	if r.Readers != 1 || r.Syncs != 1 {
		t.Fatalf("readers/syncs %d/%d, want 1/1", r.Readers, r.Syncs)
	}
	// The writer's CPU (1: homes alternate) busy-waited for the reader.
	_, _, spin := m.Ledger(1)
	if spin <= 0 {
		t.Fatal("writer synchronized against an in-flight reader without a grace-period wait")
	}
	for c := 0; c < 2; c++ {
		busy, idle, spin := m.Ledger(c)
		if busy+idle+spin != elapsed {
			t.Fatalf("cpu %d ledger %v+%v+%v != elapsed %v", c, busy, idle, spin, elapsed)
		}
	}
}

// TestSMPObserveTracks pins the obs contract: one track per CPU, spans
// only when observing, and observation never perturbs timing.
func TestSMPObserveTracks(t *testing.T) {
	run := func(observe bool) (*SMPMachine, *obs.Recorder) {
		m := MustSMPMachine(osprofile.Linux128(), 2)
		var rec *obs.Recorder
		if observe {
			rec = obs.NewRecorder(m.Clock())
			m.Observe(rec)
		}
		l := m.NewLock(SpinLock)
		for i := 0; i < 2; i++ {
			m.SpawnThread("w", lockWorkerOps(l, 5*sim.Microsecond, 20*sim.Microsecond), 10)
		}
		m.Run()
		return m, rec
	}
	plain, _ := run(false)
	observed, rec := run(true)
	if plain.Elapsed() != observed.Elapsed() || plain.Switches() != observed.Switches() {
		t.Fatalf("observation perturbed the run: %v/%d vs %v/%d",
			plain.Elapsed(), plain.Switches(), observed.Elapsed(), observed.Switches())
	}
	// The recorder's built-in main track plus one per CPU.
	if tracks := rec.Tracks(); len(tracks) != 3 {
		t.Fatalf("tracks = %v, want main plus one per CPU", tracks)
	}
	begins, ends, spins := 0, 0, 0
	for _, e := range rec.Events() {
		switch e.Kind {
		case obs.EvBegin:
			begins++
			if e.Name == "spin" {
				spins++
			}
		case obs.EvEnd:
			ends++
		}
	}
	if begins == 0 || begins != ends {
		t.Fatalf("unbalanced spans: %d begins, %d ends", begins, ends)
	}
	if spins == 0 {
		t.Fatal("contended spinlock run recorded no spin spans")
	}
	reg := obs.NewRegistry()
	observed.FoldMetrics(reg, "smp.")
	if v, ok := reg.Snapshot().Get("smp.context_switches"); !ok || v != float64(observed.Switches()) {
		t.Errorf("folded switches = %v %v, want %d", v, ok, observed.Switches())
	}
}
