package fs

import (
	"fmt"
	"testing"

	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/osprofile"
	"repro/internal/sim"
)

// workload exercises every charge path: directory metadata, create,
// sequential and random writes, reads beyond the cache, stat, rename,
// unlink, and a final sync.
func workload(f *FileSystem) {
	if err := f.Mkdir("/d"); err != nil {
		panic(err)
	}
	for i := 0; i < 4; i++ {
		path := fmt.Sprintf("/d/f%d", i)
		fl, err := f.Create(path)
		if err != nil {
			panic(err)
		}
		fl.Write(256 << 10)
		fl.WriteAt(0, 4096)
		fl.SeekTo(0)
		fl.Read(128 << 10)
		fl.ReadAt(64<<10, 4096)
		fl.Close()
		if _, err := f.Stat(path); err != nil {
			panic(err)
		}
	}
	if err := f.Rename("/d/f0", "/d/g0"); err != nil {
		panic(err)
	}
	if err := f.Unlink("/d/g0"); err != nil {
		panic(err)
	}
	f.SyncAll()
}

// The phase ledger is exact: every duration the file system charges is
// tagged with a phase, so the phases sum to the elapsed virtual time to
// the nanosecond, on every personality.
func TestFSPhaseSumsEqualElapsed(t *testing.T) {
	for _, p := range osprofile.All() {
		t.Run(p.Name, func(t *testing.T) {
			r := newRig(p)
			start := r.clock.Now()
			workload(r.fs)
			elapsed := r.clock.Now().Sub(start)

			var sum sim.Duration
			for ph := Phase(0); ph < NumPhases; ph++ {
				sum += r.fs.PhaseTime(ph)
			}
			if sum != elapsed {
				t.Fatalf("phase sum %v != elapsed %v (breakdown %v)",
					sum, elapsed, r.fs.PhaseBreakdown())
			}
			nonzero := []Phase{PhaseVFS, PhaseCopy, PhaseAlloc}
			if p.FS.MetaPolicy != osprofile.MetaAsync {
				// ext2fs commits metadata asynchronously: no MetaSync time.
				nonzero = append(nonzero, PhaseMetaSync)
			}
			for _, ph := range nonzero {
				if r.fs.PhaseTime(ph) == 0 {
					t.Errorf("phase %v charged nothing", ph)
				}
			}
		})
	}
}

// Remake starts a fresh ledger along with fresh stats.
func TestFSPhasesResetOnRemake(t *testing.T) {
	r := newRig(osprofile.FreeBSD205())
	workload(r.fs)
	r.fs.Remake()
	if got := r.fs.PhaseBreakdown(); got != ([NumPhases]sim.Duration{}) {
		t.Fatalf("phases survived Remake: %v", got)
	}
}

// With a recorder attached the file system emits balanced spans on the
// fs and disk tracks, and observing does not perturb the simulated time.
func TestFSObserveSpans(t *testing.T) {
	plain := newRig(osprofile.FreeBSD205())
	workload(plain.fs)

	r := newRig(osprofile.FreeBSD205())
	rec := obs.NewRecorder(r.clock)
	r.fs.Observe(rec)
	workload(r.fs)

	if r.clock.Now() != plain.clock.Now() {
		t.Fatalf("observing changed timing: %v vs %v", r.clock.Now(), plain.clock.Now())
	}
	if r.fs.Recorder() != rec {
		t.Fatal("Recorder() did not return the attached recorder")
	}

	begins := make(map[string]int)
	depth := 0
	for _, e := range rec.Events() {
		switch e.Kind {
		case obs.EvBegin:
			begins[e.Name]++
			depth++
		case obs.EvEnd:
			depth--
		}
		if depth < 0 {
			t.Fatal("end before begin")
		}
	}
	if depth != 0 {
		t.Fatalf("unbalanced spans: depth %d at stream end", depth)
	}
	for _, name := range []string{"mkdir", "create", "write", "read", "stat", "rename", "unlink", "meta-write", "flush"} {
		if begins[name] == 0 {
			t.Errorf("no %q span recorded", name)
		}
	}
	tracks := rec.Tracks()
	want := map[string]bool{"fs": false, "disk": false}
	for _, tr := range tracks {
		if _, ok := want[tr]; ok {
			want[tr] = true
		}
	}
	for name, seen := range want {
		if !seen {
			t.Errorf("track %q not registered (have %v)", name, tracks)
		}
	}

	// Detaching stops emission.
	n := rec.Len()
	r.fs.Observe(nil)
	fl, err := r.fs.Create("/quiet")
	if err != nil {
		t.Fatal(err)
	}
	fl.Close()
	if rec.Len() != n {
		t.Fatal("detached file system still recorded events")
	}
}

// FoldMetrics lands the stats and the phase ledger in a registry, and the
// folded phase microseconds match the ledger.
func TestFSFoldMetrics(t *testing.T) {
	r := newRig(osprofile.Solaris24())
	workload(r.fs)
	reg := obs.NewRegistry()
	r.fs.FoldMetrics(reg, "fs.")
	snap := reg.Snapshot()

	stats := r.fs.Stats()
	if v, ok := snap.Get("fs.creates"); !ok || v != float64(stats.Creates) {
		t.Fatalf("fs.creates = %v, want %d", v, stats.Creates)
	}
	if v, ok := snap.Get("fs.sync_meta_writes"); !ok || v != float64(stats.SyncMetaWrites) {
		t.Fatalf("fs.sync_meta_writes = %v, want %d", v, stats.SyncMetaWrites)
	}
	for ph := Phase(0); ph < NumPhases; ph++ {
		key := "fs.phase_us." + ph.String()
		v, ok := snap.Get(key)
		if !ok || v != r.fs.PhaseTime(ph).Microseconds() {
			t.Fatalf("%s = %v, want %v", key, v, r.fs.PhaseTime(ph).Microseconds())
		}
	}
}

// Fault injection does not break the structural identity: disk latency
// spikes, transient retries, remaps and cache page-steal pressure all
// flow through the tagged charge paths, so the phases still sum to
// elapsed virtual time exactly — and the run remains deterministic.
func TestFSPhaseSumsExactUnderFaults(t *testing.T) {
	plan := &fault.Plan{
		Disk: fault.DiskFaults{
			LatencySpikeProb:   0.2,
			TransientErrorProb: 0.1,
			SlowSectorProb:     0.1,
		},
		Cache: fault.CacheFaults{PageStealProb: 0.05},
	}
	if err := plan.Validate(); err != nil {
		t.Fatal(err)
	}
	anyFired := false
	for _, p := range osprofile.All() {
		t.Run(p.String(), func(t *testing.T) {
			run := func() (*rig, sim.Duration, fault.Injectors) {
				r := newRig(p)
				inj := fault.New(plan, sim.NewRNG(99))
				r.fs.SetFaults(inj)
				start := r.clock.Now()
				workload(r.fs)
				return r, r.clock.Now().Sub(start), inj
			}
			r, elapsed, inj := run()
			var sum sim.Duration
			for ph := Phase(0); ph < NumPhases; ph++ {
				sum += r.fs.PhaseTime(ph)
			}
			if sum != elapsed {
				t.Fatalf("faulted phase sum %v != elapsed %v (breakdown %v)",
					sum, elapsed, r.fs.PhaseBreakdown())
			}
			// Disk faults can only fire where the personality actually
			// reaches the disk synchronously; the async-metadata systems
			// legitimately sail through this cached workload untouched.
			fired := inj.Disk.Spikes + inj.Disk.Retries + inj.Disk.Remaps
			if fired > 0 {
				anyFired = true
				clean := newRig(p)
				cleanStart := clean.clock.Now()
				workload(clean.fs)
				if cleanElapsed := clean.clock.Now().Sub(cleanStart); elapsed <= cleanElapsed {
					t.Errorf("faulted run (%v) not slower than clean run (%v)", elapsed, cleanElapsed)
				}
			}
			// Same seed, same plan: bit-identical replay.
			r2, elapsed2, _ := run()
			if elapsed2 != elapsed || r2.fs.PhaseBreakdown() != r.fs.PhaseBreakdown() {
				t.Error("faulted run is not deterministic across replays")
			}
		})
	}
	if !anyFired {
		t.Error("no personality fired a single disk fault; the FFS systems should have")
	}
}
