package fs_test

import (
	"fmt"

	"repro/internal/disk"
	"repro/internal/fs"
	"repro/internal/osprofile"
	"repro/internal/sim"
)

// Example demonstrates the crtdel pattern on the two metadata policies:
// ext2's asynchronous updates never touch the disk, FFS's synchronous
// ones always do.
func Example() {
	for _, p := range []*osprofile.Profile{osprofile.Linux128(), osprofile.FreeBSD205()} {
		clock := &sim.Clock{}
		fsys := fs.MustNew(clock, disk.MustNew(disk.HP3725(), sim.NewRNG(1)), p)

		f, _ := fsys.Create("/tmp.file")
		f.Write(1024)
		f.Close()
		fsys.Unlink("/tmp.file")

		fmt.Printf("%s (%s metadata): %d synchronous metadata writes\n",
			p, p.FS.MetaPolicy, fsys.Stats().SyncMetaWrites)
	}
	// Output:
	// Linux 1.2.8 (asynchronous metadata): 0 synchronous metadata writes
	// FreeBSD 2.0.5R (synchronous metadata): 8 synchronous metadata writes
}
