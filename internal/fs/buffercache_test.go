package fs

import (
	"testing"
	"testing/quick"
)

func newCache(capBlocks, dirtyBlocks int) *BufferCache {
	return NewBufferCache(int64(capBlocks)*BlockSize, int64(dirtyBlocks)*BlockSize, BlockSize)
}

func TestCacheInsertAndLookup(t *testing.T) {
	c := newCache(4, 4)
	if c.Lookup(1) {
		t.Fatal("empty cache hit")
	}
	c.Insert(1, false)
	if !c.Lookup(1) {
		t.Fatal("inserted block missed")
	}
	if c.Hits != 1 || c.Misses != 1 {
		t.Fatalf("hit/miss counters: %d/%d, want 1/1", c.Hits, c.Misses)
	}
	if c.Bytes() != BlockSize {
		t.Fatalf("Bytes = %d", c.Bytes())
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := newCache(3, 3)
	c.Insert(1, false)
	c.Insert(2, false)
	c.Insert(3, false)
	c.Lookup(1) // 1 is now MRU; 2 is LRU
	c.Insert(4, false)
	if c.Resident(2) {
		t.Fatal("LRU block 2 should have been evicted")
	}
	for _, blk := range []int64{1, 3, 4} {
		if !c.Resident(blk) {
			t.Fatalf("block %d should be resident", blk)
		}
	}
}

func TestCacheDirtyEvictionReported(t *testing.T) {
	c := newCache(2, 2)
	c.Insert(1, true)
	c.Insert(2, false)
	wb := c.Insert(3, false) // evicts 1 (dirty)
	if len(wb) != 1 || wb[0] != 1 {
		t.Fatalf("writeBack = %v, want [1]", wb)
	}
	// Clean eviction is silent.
	wb = c.Insert(4, false) // evicts 2 (clean)
	if len(wb) != 0 {
		t.Fatalf("clean eviction reported write-back: %v", wb)
	}
}

func TestCacheDirtyAccounting(t *testing.T) {
	c := newCache(8, 2)
	c.Insert(1, true)
	c.Insert(2, true)
	if c.DirtyBytes() != 2*BlockSize {
		t.Fatalf("DirtyBytes = %d", c.DirtyBytes())
	}
	if c.OverDirtyLimit() {
		t.Fatal("at the limit is not over the limit")
	}
	c.Insert(3, true)
	if !c.OverDirtyLimit() {
		t.Fatal("should be over the dirty limit")
	}
	flushed := c.FlushOldestDirty()
	if len(flushed) == 0 {
		t.Fatal("FlushOldestDirty flushed nothing")
	}
	if c.OverDirtyLimit() {
		t.Fatal("still over the limit after flush")
	}
	// Flushed blocks stay resident, clean.
	for _, blk := range flushed {
		if !c.Resident(blk) {
			t.Fatalf("flushed block %d was dropped", blk)
		}
	}
}

func TestCacheMarkDirty(t *testing.T) {
	c := newCache(4, 4)
	if c.MarkDirty(9) {
		t.Fatal("MarkDirty of absent block reported success")
	}
	c.Insert(1, false)
	if !c.MarkDirty(1) {
		t.Fatal("MarkDirty of resident block failed")
	}
	if c.DirtyBytes() != BlockSize {
		t.Fatalf("DirtyBytes = %d", c.DirtyBytes())
	}
	// Idempotent.
	c.MarkDirty(1)
	if c.DirtyBytes() != BlockSize {
		t.Fatal("double MarkDirty double-counted")
	}
}

func TestCacheFlushAllOrder(t *testing.T) {
	c := newCache(8, 8)
	c.Insert(1, true)
	c.Insert(2, false)
	c.Insert(3, true)
	out := c.FlushAll()
	// LRU-to-MRU: 1 before 3.
	if len(out) != 2 || out[0] != 1 || out[1] != 3 {
		t.Fatalf("FlushAll = %v, want [1 3]", out)
	}
	if c.DirtyBytes() != 0 {
		t.Fatal("FlushAll left dirty bytes")
	}
}

func TestCacheCleanBlock(t *testing.T) {
	c := newCache(4, 4)
	c.Insert(1, true)
	if !c.CleanBlock(1) {
		t.Fatal("CleanBlock of dirty block returned false")
	}
	if c.CleanBlock(1) {
		t.Fatal("CleanBlock of clean block returned true")
	}
	if c.CleanBlock(99) {
		t.Fatal("CleanBlock of absent block returned true")
	}
	if c.DirtyBytes() != 0 {
		t.Fatal("CleanBlock did not update accounting")
	}
}

func TestCacheInvalidate(t *testing.T) {
	c := newCache(4, 4)
	c.Insert(1, true)
	c.Invalidate(1)
	if c.Resident(1) || c.Bytes() != 0 || c.DirtyBytes() != 0 {
		t.Fatal("Invalidate left state behind")
	}
	c.Invalidate(2) // absent: no-op
}

func TestCacheClear(t *testing.T) {
	c := newCache(4, 4)
	c.Insert(1, true)
	c.Insert(2, false)
	c.Clear()
	if c.Bytes() != 0 || c.DirtyBytes() != 0 || c.Resident(1) {
		t.Fatal("Clear left state")
	}
}

func TestCacheInsertResidentPanics(t *testing.T) {
	c := newCache(4, 4)
	c.Insert(1, false)
	defer func() {
		if recover() == nil {
			t.Fatal("double Insert did not panic")
		}
	}()
	c.Insert(1, false)
}

func TestCacheBadConstruction(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero capacity did not panic")
		}
	}()
	NewBufferCache(0, 0, BlockSize)
}

func TestCacheDirtyLimitDefaults(t *testing.T) {
	// A zero or over-large dirty limit falls back to the capacity.
	c := NewBufferCache(4*BlockSize, 0, BlockSize)
	c.Insert(1, true)
	c.Insert(2, true)
	c.Insert(3, true)
	c.Insert(4, true)
	if c.OverDirtyLimit() {
		t.Fatal("dirty limit should default to capacity")
	}
}

// Property: bytes and dirty accounting stay consistent with residency
// under arbitrary operation sequences, and capacity is never exceeded.
func TestCacheInvariantsProperty(t *testing.T) {
	f := func(ops []uint16) bool {
		c := newCache(8, 4)
		resident := map[int64]bool{}
		for _, op := range ops {
			blk := int64(op % 32)
			switch op % 5 {
			case 0:
				if !resident[blk] {
					c.Insert(blk, op%2 == 0)
					resident[blk] = true
					// Evictions may have dropped others; resync below.
				}
			case 1:
				c.Lookup(blk)
			case 2:
				c.MarkDirty(blk)
			case 3:
				c.Invalidate(blk)
				delete(resident, blk)
			case 4:
				c.FlushOldestDirty()
			}
			// Resync the model with evictions.
			for b := range resident {
				if !c.Resident(b) {
					delete(resident, b)
				}
			}
			if c.Bytes() != int64(len(resident))*BlockSize {
				return false
			}
			if c.Bytes() > c.Capacity() {
				return false
			}
			if c.DirtyBytes() < 0 || c.DirtyBytes() > c.Bytes() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
