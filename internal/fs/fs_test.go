package fs

import (
	"testing"

	"repro/internal/disk"
	"repro/internal/osprofile"
	"repro/internal/sim"
)

// rig is a file system plus its clock, for cost assertions.
type rig struct {
	clock *sim.Clock
	fs    *FileSystem
}

func newRig(p *osprofile.Profile) *rig {
	clock := &sim.Clock{}
	d := disk.MustNew(disk.HP3725(), sim.NewRNG(7))
	return &rig{clock: clock, fs: MustNew(clock, d, p)}
}

func (r *rig) elapsed(fn func()) sim.Duration {
	start := r.clock.Now()
	fn()
	return r.clock.Now().Sub(start)
}

func TestCreateOpenReadWriteUnlink(t *testing.T) {
	r := newRig(osprofile.Linux128())
	f, err := r.fs.Create("/tmp.txt")
	if err != nil {
		t.Fatal(err)
	}
	f.Write(10000)
	f.Close()
	if !r.fs.Exists("/tmp.txt") {
		t.Fatal("created file does not exist")
	}
	g, err := r.fs.Open("/tmp.txt")
	if err != nil {
		t.Fatal(err)
	}
	if got := g.Read(20000); got != 10000 {
		t.Fatalf("Read = %d, want the 10000 written", got)
	}
	g.Close()
	if err := r.fs.Unlink("/tmp.txt"); err != nil {
		t.Fatal(err)
	}
	if r.fs.Exists("/tmp.txt") {
		t.Fatal("unlinked file still exists")
	}
}

func TestDirectories(t *testing.T) {
	r := newRig(osprofile.FreeBSD205())
	mustMkdir := func(p string) {
		t.Helper()
		if err := r.fs.Mkdir(p); err != nil {
			t.Fatal(err)
		}
	}
	mustMkdir("/a")
	mustMkdir("/a/b")
	if _, err := r.fs.Create("/a/b/f1"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.fs.Create("/a/b/f2"); err != nil {
		t.Fatal(err)
	}
	names, err := r.fs.List("/a/b")
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 || names[0] != "f1" || names[1] != "f2" {
		t.Fatalf("List = %v, want [f1 f2]", names)
	}
	st, err := r.fs.Stat("/a/b")
	if err != nil || !st.Dir {
		t.Fatalf("Stat dir: %v %+v", err, st)
	}
}

func TestErrors(t *testing.T) {
	r := newRig(osprofile.Solaris24())
	if _, err := r.fs.Open("/missing"); err == nil {
		t.Error("Open of missing file must fail")
	}
	if err := r.fs.Unlink("/missing"); err == nil {
		t.Error("Unlink of missing file must fail")
	}
	if err := r.fs.Mkdir("/x/y/z"); err == nil {
		t.Error("Mkdir with missing parents must fail")
	}
	r.fs.Mkdir("/d")
	if err := r.fs.Mkdir("/d"); err == nil {
		t.Error("duplicate Mkdir must fail")
	}
	if _, err := r.fs.Create("/d"); err == nil {
		t.Error("Create over a directory must fail")
	}
	if err := r.fs.Unlink("/d"); err == nil {
		t.Error("Unlink of a directory must fail")
	}
	if _, err := r.fs.Open("/d"); err == nil {
		t.Error("Open of a directory must fail")
	}
	if _, err := r.fs.List("/missing"); err == nil {
		t.Error("List of missing dir must fail")
	}
}

func TestCreateTruncatesExisting(t *testing.T) {
	r := newRig(osprofile.Linux128())
	f, _ := r.fs.Create("/t")
	f.Write(50000)
	f.Close()
	g, _ := r.fs.Create("/t")
	if g.Size() != 0 {
		t.Fatalf("re-Create left size %d, want 0", g.Size())
	}
	g.Close()
}

func TestAsyncMetadataAvoidsDisk(t *testing.T) {
	// §7.2: "Linux clearly is not accessing the disk during this
	// benchmark" — a create/write/read/delete cycle on ext2 must perform
	// no synchronous metadata writes and finish in a few milliseconds.
	r := newRig(osprofile.Linux128())
	d := r.elapsed(func() {
		f, _ := r.fs.Create("/f")
		f.Write(1024)
		f.Close()
		g, _ := r.fs.Open("/f")
		g.Read(1024)
		g.Close()
		r.fs.Unlink("/f")
	})
	if got := r.fs.Stats().SyncMetaWrites; got != 0 {
		t.Fatalf("ext2 performed %d sync metadata writes, want 0", got)
	}
	if d > 10*sim.Millisecond {
		t.Fatalf("ext2 crtdel iteration took %v, want a few ms", d)
	}
}

func TestSyncMetadataHitsDisk(t *testing.T) {
	r := newRig(osprofile.FreeBSD205())
	d := r.elapsed(func() {
		f, _ := r.fs.Create("/f")
		f.Write(1024)
		f.Close()
		g, _ := r.fs.Open("/f")
		g.Read(1024)
		g.Close()
		r.fs.Unlink("/f")
	})
	fsc := r.fs.OS().FS
	want := uint64(fsc.SyncWritesPerCreate + fsc.SyncWritesPerUnlink)
	if got := r.fs.Stats().SyncMetaWrites; got != want {
		t.Fatalf("FFS sync writes = %d, want %d", got, want)
	}
	if d < 20*sim.Millisecond {
		t.Fatalf("FFS crtdel iteration took only %v; sync metadata must dominate", d)
	}
}

func TestCrtdelOrderOfMagnitudeGap(t *testing.T) {
	// §7: "Linux is an order of magnitude faster than the other systems"
	// on small-file create/delete workloads.
	iter := func(p *osprofile.Profile) sim.Duration {
		r := newRig(p)
		return r.elapsed(func() {
			for i := 0; i < 10; i++ {
				f, _ := r.fs.Create("/f")
				f.Write(1024)
				f.Close()
				g, _ := r.fs.Open("/f")
				g.Read(1024)
				g.Close()
				r.fs.Unlink("/f")
			}
		}) / 10
	}
	linux := iter(osprofile.Linux128())
	fbsd := iter(osprofile.FreeBSD205())
	sol := iter(osprofile.Solaris24())
	if fbsd < 8*linux {
		t.Errorf("FreeBSD %v not an order of magnitude above Linux %v", fbsd, linux)
	}
	if sol < 8*linux {
		t.Errorf("Solaris %v not an order of magnitude above Linux %v", sol, linux)
	}
	if fbsd < sol+20*sim.Millisecond {
		t.Errorf("FreeBSD %v should exceed Solaris %v by ~32ms (§7.2)", fbsd, sol)
	}
}

func TestOrderedAsyncIsCheap(t *testing.T) {
	// §13: FreeBSD 2.1's ordered async updates fix small-file performance.
	r := newRig(osprofile.FreeBSD21())
	d := r.elapsed(func() {
		f, _ := r.fs.Create("/f")
		f.Write(1024)
		f.Close()
		r.fs.Unlink("/f")
	})
	if r.fs.Stats().SyncMetaWrites != 0 {
		t.Fatal("ordered async policy must not write metadata synchronously")
	}
	if d > 10*sim.Millisecond {
		t.Fatalf("ordered-async create/delete took %v, want a few ms", d)
	}
}

func TestDataCachedUpToCacheSize(t *testing.T) {
	// Figures 9-11: files up to ~20 MB are served from the cache.
	r := newRig(osprofile.FreeBSD205())
	f, _ := r.fs.Create("/big")
	f.Write(10 << 20)
	f.Close()
	r.fs.Stats()
	g, _ := r.fs.Open("/big")
	before := r.fs.Stats().DataDiskReads
	g.Read(10 << 20)
	g.Close()
	if got := r.fs.Stats().DataDiskReads - before; got != 0 {
		t.Fatalf("10 MB re-read hit the disk %d times; should be fully cached", got)
	}
}

func TestLargeFileMissesCache(t *testing.T) {
	r := newRig(osprofile.FreeBSD205())
	size := int64(30 << 20) // beyond the 20 MB cache
	f, _ := r.fs.Create("/huge")
	f.Write(size)
	f.Close()
	g, _ := r.fs.Open("/huge")
	before := r.fs.Stats().DataDiskReads
	g.Read(size)
	g.Close()
	misses := r.fs.Stats().DataDiskReads - before
	blocks := uint64(size / BlockSize)
	// A sequential scan of a file 1.5x the cache re-misses every block
	// under LRU.
	if misses < blocks*9/10 {
		t.Fatalf("30 MB scan missed only %d of %d blocks", misses, blocks)
	}
}

func TestDirtyThrottleFlushes(t *testing.T) {
	r := newRig(osprofile.FreeBSD205())
	f, _ := r.fs.Create("/big")
	f.Write(12 << 20) // beyond the 8 MB dirty limit
	f.Close()
	if w := r.fs.Stats().DataDiskWrites; w == 0 {
		t.Fatal("writing past the dirty limit must flush to disk")
	}
	if d := r.fs.Cache().DirtyBytes(); d > int64(r.fs.OS().FS.DirtyLimitMB)<<20 {
		t.Fatalf("dirty bytes %d exceed the limit after throttling", d)
	}
}

func TestRandomReadOutOfCacheNear14ms(t *testing.T) {
	// Figure 11: random seeks to uncached blocks converge to ~14 ms on
	// every system.
	r := newRig(osprofile.Solaris24())
	size := int64(60 << 20)
	f, _ := r.fs.Create("/seekfile")
	f.Write(size)
	f.Close()
	g, _ := r.fs.Open("/seekfile")
	rng := sim.NewRNG(3)
	const seeks = 200
	var total sim.Duration
	hits := 0
	for i := 0; i < seeks; i++ {
		off := rng.Int63n(size - BlockSize)
		before := r.fs.Stats().DataDiskReads
		d := r.elapsed(func() { g.ReadAt(off, BlockSize) })
		if r.fs.Stats().DataDiskReads == before {
			hits++
			continue
		}
		total += d
	}
	g.Close()
	missCount := seeks - hits
	if missCount < seeks/2 {
		t.Fatalf("only %d of %d seeks missed on a 60 MB file", missCount, seeks)
	}
	mean := total / sim.Duration(missCount)
	if mean < 9*sim.Millisecond || mean > 20*sim.Millisecond {
		t.Fatalf("mean uncached random read = %v, want ~14ms", mean)
	}
}

func TestAttrCacheSpeedsStat(t *testing.T) {
	// §8.1: FreeBSD's attribute cache makes repeat stats nearly free.
	fb := newRig(osprofile.FreeBSD205())
	fb.fs.Mkdir("/d")
	fb.fs.Create("/d/f")
	warm := fb.elapsed(func() { fb.fs.Stat("/d/f") })

	lx := newRig(osprofile.Linux128())
	lx.fs.Mkdir("/d")
	lx.fs.Create("/d/f")
	cold := lx.elapsed(func() { lx.fs.Stat("/d/f") })
	if warm >= cold {
		t.Fatalf("FreeBSD attr-cached stat (%v) should beat Linux stat (%v)", warm, cold)
	}
}

func TestSeekToAndOffset(t *testing.T) {
	r := newRig(osprofile.Linux128())
	f, _ := r.fs.Create("/f")
	f.Write(100000)
	f.SeekTo(5000)
	if f.Offset() != 5000 {
		t.Fatalf("Offset = %d, want 5000", f.Offset())
	}
	got := f.Read(1000)
	if got != 1000 || f.Offset() != 6000 {
		t.Fatalf("Read after seek: n=%d offset=%d", got, f.Offset())
	}
	f.Close()
}

func TestReadPastEOF(t *testing.T) {
	r := newRig(osprofile.Linux128())
	f, _ := r.fs.Create("/f")
	f.Write(100)
	f.SeekTo(100)
	if got := f.Read(50); got != 0 {
		t.Fatalf("read at EOF returned %d", got)
	}
	f.SeekTo(50)
	if got := f.Read(500); got != 50 {
		t.Fatalf("short read returned %d, want 50", got)
	}
	f.Close()
}

func TestClosedFilePanics(t *testing.T) {
	r := newRig(osprofile.Linux128())
	f, _ := r.fs.Create("/f")
	f.Write(10)
	f.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("write on closed file did not panic")
		}
	}()
	f.Write(10)
}

func TestRemakeResetsEverything(t *testing.T) {
	r := newRig(osprofile.FreeBSD205())
	r.fs.Create("/f")
	r.fs.Remake()
	if r.fs.Exists("/f") {
		t.Fatal("Remake left old files")
	}
	if r.fs.Stats().Creates != 0 {
		t.Fatal("Remake left old stats")
	}
	if r.fs.Cache().Bytes() != 0 {
		t.Fatal("Remake left cached blocks")
	}
}

func TestSyncAllCleansCache(t *testing.T) {
	r := newRig(osprofile.Linux128())
	f, _ := r.fs.Create("/f")
	f.Write(1 << 20)
	f.Close()
	if r.fs.Cache().DirtyBytes() == 0 {
		t.Fatal("expected dirty data before sync")
	}
	r.fs.SyncAll()
	if r.fs.Cache().DirtyBytes() != 0 {
		t.Fatal("SyncAll left dirty data")
	}
}

func TestUnlinkInvalidatesCachedBlocks(t *testing.T) {
	r := newRig(osprofile.Linux128())
	f, _ := r.fs.Create("/f")
	f.Write(1 << 20)
	f.Close()
	before := r.fs.Cache().Bytes()
	r.fs.Unlink("/f")
	if after := r.fs.Cache().Bytes(); after >= before {
		t.Fatalf("unlink did not shrink cache: %d -> %d", before, after)
	}
}

func TestFSDeterminism(t *testing.T) {
	run := func() sim.Time {
		r := newRig(osprofile.Solaris24())
		for i := 0; i < 20; i++ {
			f, _ := r.fs.Create("/f")
			f.Write(64 << 10)
			f.Close()
			r.fs.Unlink("/f")
		}
		return r.clock.Now()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("fs not deterministic: %v vs %v", a, b)
	}
}

func TestRename(t *testing.T) {
	r := newRig(osprofile.Linux128())
	r.fs.Mkdir("/a")
	r.fs.Mkdir("/b")
	f, _ := r.fs.Create("/a/x")
	f.Write(5000)
	f.Close()
	if err := r.fs.Rename("/a/x", "/b/y"); err != nil {
		t.Fatal(err)
	}
	if r.fs.Exists("/a/x") || !r.fs.Exists("/b/y") {
		t.Fatal("rename did not move the file")
	}
	st, err := r.fs.Stat("/b/y")
	if err != nil || st.Size != 5000 {
		t.Fatalf("renamed file lost its data: %+v %v", st, err)
	}
}

func TestRenameOverwrites(t *testing.T) {
	r := newRig(osprofile.Linux128())
	a, _ := r.fs.Create("/a")
	a.Write(100)
	a.Close()
	b, _ := r.fs.Create("/b")
	b.Write(999)
	b.Close()
	if err := r.fs.Rename("/a", "/b"); err != nil {
		t.Fatal(err)
	}
	st, _ := r.fs.Stat("/b")
	if st.Size != 100 {
		t.Fatalf("rename-over did not replace: size %d", st.Size)
	}
}

func TestRenameErrors(t *testing.T) {
	r := newRig(osprofile.FreeBSD205())
	if err := r.fs.Rename("/missing", "/x"); err == nil {
		t.Error("rename of missing file must fail")
	}
	r.fs.Mkdir("/d")
	r.fs.Create("/f")
	if err := r.fs.Rename("/f", "/d"); err == nil {
		t.Error("rename onto a directory must fail")
	}
	if err := r.fs.Rename("/f", "/nodir/x"); err == nil {
		t.Error("rename into a missing directory must fail")
	}
}

func TestRenameSyncMetadataCost(t *testing.T) {
	// Under FFS, rename commits like create+unlink; under ext2 it is
	// cache-only.
	lx := newRig(osprofile.Linux128())
	lx.fs.Create("/f")
	before := lx.fs.Stats().SyncMetaWrites
	lx.fs.Rename("/f", "/g")
	if lx.fs.Stats().SyncMetaWrites != before {
		t.Error("ext2 rename must not write metadata synchronously")
	}

	fb := newRig(osprofile.FreeBSD205())
	fb.fs.Create("/f")
	before = fb.fs.Stats().SyncMetaWrites
	fb.fs.Rename("/f", "/g")
	fsc := fb.fs.OS().FS
	want := before + uint64(fsc.SyncWritesPerCreate+fsc.SyncWritesPerUnlink)
	if got := fb.fs.Stats().SyncMetaWrites; got != want {
		t.Errorf("FFS rename sync writes = %d, want %d", got, want)
	}
}
