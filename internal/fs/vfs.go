package fs

// VFS is the file system interface workloads are written against. The
// local FileSystem satisfies it through AsVFS, and the NFS client
// implements it directly, so the Modified Andrew Benchmark runs unchanged
// over either — exactly as the real MAB did in §8 and §10.
type VFS interface {
	// Mkdir creates a directory.
	Mkdir(path string) error
	// Create creates or truncates a file and opens it.
	Create(path string) (Handle, error)
	// Open opens an existing file.
	Open(path string) (Handle, error)
	// Unlink removes a file.
	Unlink(path string) error
	// Rename moves a file.
	Rename(oldPath, newPath string) error
	// Stat returns file attributes.
	Stat(path string) (StatInfo, error)
	// List returns the names in a directory, sorted.
	List(path string) ([]string, error)
}

// Handle is an open file.
type Handle interface {
	// Read reads up to n bytes at the current offset, returning the count.
	Read(n int64) int64
	// Write writes n bytes at the current offset.
	Write(n int64)
	// SeekTo positions the offset.
	SeekTo(offset int64)
	// Size returns the file size.
	Size() int64
	// Close closes the handle.
	Close()
}

// vfsAdapter lifts *FileSystem's concrete returns to the interface.
type vfsAdapter struct{ f *FileSystem }

// AsVFS returns the file system as a VFS.
func (f *FileSystem) AsVFS() VFS { return vfsAdapter{f} }

func (a vfsAdapter) Mkdir(path string) error { return a.f.Mkdir(path) }
func (a vfsAdapter) Create(path string) (Handle, error) {
	h, err := a.f.Create(path)
	if err != nil {
		return nil, err
	}
	return h, nil
}
func (a vfsAdapter) Open(path string) (Handle, error) {
	h, err := a.f.Open(path)
	if err != nil {
		return nil, err
	}
	return h, nil
}
func (a vfsAdapter) Unlink(path string) error { return a.f.Unlink(path) }
func (a vfsAdapter) Rename(oldPath, newPath string) error {
	return a.f.Rename(oldPath, newPath)
}
func (a vfsAdapter) Stat(path string) (StatInfo, error) { return a.f.Stat(path) }
func (a vfsAdapter) List(path string) ([]string, error) { return a.f.List(path) }

// SyncAll flushes all dirty data, satisfying workload.Syncer.
func (a vfsAdapter) SyncAll() { a.f.SyncAll() }
