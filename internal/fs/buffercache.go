package fs

// BufferCache models the dynamically sized unified buffer cache all three
// systems use (§7: each "has a dynamically sized buffer cache that trades
// physical pages for buffer cache pages during intensive disk accesses").
// Its capacity is the amount of the 32 MB machine the cache is allowed to
// grow into — about 20 MB on every system, which is why bonnie's curves
// bend at 20 MB file sizes (Figures 9-11).
//
// The cache tracks block residency, dirtiness and LRU order. It never
// touches the disk itself: eviction and flush decisions return the block
// numbers that must be written, and the file system charges the disk time.
type BufferCache struct {
	capacity   int64 // bytes
	blockSize  int64
	dirtyLimit int64 // bytes of dirty data before the writer is throttled

	entries map[int64]*bufEntry
	head    *bufEntry // most recently used
	tail    *bufEntry // least recently used
	bytes   int64
	dirty   int64

	// dhead/dtail thread a second list through only the dirty entries,
	// mirroring every main-list promotion, so the relative order of dirty
	// entries always matches the main LRU list and flushes walk just the
	// dirty blocks instead of scanning the whole cache.
	dhead *bufEntry
	dtail *bufEntry

	// freeEnt recycles evicted entries; evictScratch and flushScratch are
	// the reused backing arrays for the block lists Insert/SetCapacity and
	// the Flush methods return (each valid until the next call of the same
	// method family).
	freeEnt      *bufEntry
	evictScratch []int64
	flushScratch []int64

	// Hits and Misses count Lookup outcomes.
	Hits, Misses uint64
}

type bufEntry struct {
	blk          int64
	dirty        bool
	prev, next   *bufEntry
	dprev, dnext *bufEntry
}

// NewBufferCache builds a cache of capacityBytes with the given dirty
// threshold. Block size is the file system block size.
func NewBufferCache(capacityBytes, dirtyLimitBytes, blockSize int64) *BufferCache {
	if capacityBytes <= 0 || blockSize <= 0 {
		panic("fs: buffer cache needs positive capacity and block size")
	}
	if dirtyLimitBytes <= 0 || dirtyLimitBytes > capacityBytes {
		dirtyLimitBytes = capacityBytes
	}
	return &BufferCache{
		capacity:   capacityBytes,
		blockSize:  blockSize,
		dirtyLimit: dirtyLimitBytes,
		entries:    make(map[int64]*bufEntry),
	}
}

// Capacity returns the cache capacity in bytes.
func (c *BufferCache) Capacity() int64 { return c.capacity }

// SetCapacity resizes the cache mid-run — the VM system stealing pages
// back under memory pressure (or returning them). Shrinking below the
// resident set evicts from the LRU tail; evicted dirty blocks are
// returned for the file system to charge as write-back, exactly like
// Insert's evictions. The dirty limit is clamped to the new capacity.
func (c *BufferCache) SetCapacity(bytes int64) (writeBack []int64) {
	if bytes <= 0 {
		bytes = c.blockSize
	}
	c.capacity = bytes
	if c.dirtyLimit > c.capacity {
		c.dirtyLimit = c.capacity
	}
	writeBack = c.evictScratch[:0]
	for c.bytes > c.capacity {
		victim := c.tail
		if victim == nil {
			break
		}
		if victim.dirty {
			writeBack = append(writeBack, victim.blk)
		}
		c.drop(victim)
	}
	c.evictScratch = writeBack
	return writeBack
}

// Bytes returns the bytes currently cached.
func (c *BufferCache) Bytes() int64 { return c.bytes }

// DirtyBytes returns the bytes of dirty data currently cached.
func (c *BufferCache) DirtyBytes() int64 { return c.dirty }

// Resident reports whether blk is cached, without disturbing LRU order.
func (c *BufferCache) Resident(blk int64) bool {
	_, ok := c.entries[blk]
	return ok
}

func (c *BufferCache) unlink(e *bufEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (c *BufferCache) pushFront(e *bufEntry) {
	e.next = c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

func (c *BufferCache) dunlink(e *bufEntry) {
	if e.dprev != nil {
		e.dprev.dnext = e.dnext
	} else {
		c.dhead = e.dnext
	}
	if e.dnext != nil {
		e.dnext.dprev = e.dprev
	} else {
		c.dtail = e.dprev
	}
	e.dprev, e.dnext = nil, nil
}

func (c *BufferCache) dpushFront(e *bufEntry) {
	e.dnext = c.dhead
	if c.dhead != nil {
		c.dhead.dprev = e
	}
	c.dhead = e
	if c.dtail == nil {
		c.dtail = e
	}
}

// Lookup reports whether blk is cached, promoting it to most recently
// used and counting the hit or miss.
func (c *BufferCache) Lookup(blk int64) bool {
	e, ok := c.entries[blk]
	if !ok {
		c.Misses++
		return false
	}
	c.Hits++
	c.unlink(e)
	c.pushFront(e)
	if e.dirty {
		c.dunlink(e)
		c.dpushFront(e)
	}
	return true
}

// Insert caches blk (which must not be resident; use Lookup/MarkDirty for
// resident blocks) and returns the dirty blocks evicted to make room, in
// eviction order. Clean evictions are silent.
func (c *BufferCache) Insert(blk int64, dirty bool) (writeBack []int64) {
	if _, ok := c.entries[blk]; ok {
		panic("fs: Insert of resident block")
	}
	e := c.allocEntry()
	e.blk = blk
	e.dirty = dirty
	c.entries[blk] = e
	c.pushFront(e)
	c.bytes += c.blockSize
	if dirty {
		c.dirty += c.blockSize
		c.dpushFront(e)
	}
	writeBack = c.evictScratch[:0]
	for c.bytes > c.capacity {
		victim := c.tail
		if victim == nil || victim == e {
			break
		}
		if victim.dirty {
			writeBack = append(writeBack, victim.blk)
		}
		c.drop(victim)
	}
	c.evictScratch = writeBack
	if len(writeBack) == 0 {
		return nil
	}
	return writeBack
}

// allocEntry reuses a dropped entry or allocates a fresh one.
func (c *BufferCache) allocEntry() *bufEntry {
	if e := c.freeEnt; e != nil {
		c.freeEnt = e.next
		e.next = nil
		return e
	}
	return &bufEntry{}
}

// MarkDirty marks a resident block dirty (a rewrite in place). It reports
// whether the block was resident.
func (c *BufferCache) MarkDirty(blk int64) bool {
	e, ok := c.entries[blk]
	if !ok {
		return false
	}
	if !e.dirty {
		e.dirty = true
		c.dirty += c.blockSize
	} else {
		c.dunlink(e)
	}
	c.unlink(e)
	c.pushFront(e)
	c.dpushFront(e)
	return true
}

// OverDirtyLimit reports whether dirty data exceeds the throttle point.
func (c *BufferCache) OverDirtyLimit() bool { return c.dirty > c.dirtyLimit }

// FlushOldestDirty cleans the least recently used dirty blocks until dirty
// data is back under the limit, returning the block numbers to write.
// The blocks stay resident (clean). The walk covers only dirty entries —
// the dirty list mirrors the main list's relative order — so the cost is
// O(blocks flushed), not O(blocks cached).
func (c *BufferCache) FlushOldestDirty() []int64 {
	out := c.flushScratch[:0]
	for c.dirty > c.dirtyLimit && c.dtail != nil {
		e := c.dtail
		e.dirty = false
		c.dirty -= c.blockSize
		c.dunlink(e)
		out = append(out, e.blk)
	}
	c.flushScratch = out
	if len(out) == 0 {
		return nil
	}
	return out
}

// FlushAll cleans every dirty block, returning the block numbers to write
// in LRU-to-MRU order (sync(2) semantics).
func (c *BufferCache) FlushAll() []int64 {
	out := c.flushScratch[:0]
	for c.dtail != nil {
		e := c.dtail
		e.dirty = false
		c.dirty -= c.blockSize
		c.dunlink(e)
		out = append(out, e.blk)
	}
	c.flushScratch = out
	if len(out) == 0 {
		return nil
	}
	return out
}

// CleanBlock marks blk clean if it is resident and dirty, reporting
// whether it was dirty (the caller then charges the disk write). Used by
// the NFS server's per-RPC commit.
func (c *BufferCache) CleanBlock(blk int64) bool {
	e, ok := c.entries[blk]
	if !ok || !e.dirty {
		return false
	}
	e.dirty = false
	c.dirty -= c.blockSize
	c.dunlink(e)
	return true
}

// Invalidate drops blk if resident, discarding dirty data (unlink of a
// deleted file's blocks).
func (c *BufferCache) Invalidate(blk int64) {
	if e, ok := c.entries[blk]; ok {
		c.drop(e)
	}
}

func (c *BufferCache) drop(e *bufEntry) {
	c.unlink(e)
	delete(c.entries, e.blk)
	c.bytes -= c.blockSize
	if e.dirty {
		c.dirty -= c.blockSize
		c.dunlink(e)
	}
	e.dirty = false
	e.blk = 0
	e.next = c.freeEnt
	c.freeEnt = e
}

// Clear empties the cache (fresh file system).
func (c *BufferCache) Clear() {
	c.entries = make(map[int64]*bufEntry)
	c.head, c.tail = nil, nil
	c.dhead, c.dtail = nil, nil
	c.freeEnt = nil
	c.bytes, c.dirty = 0, 0
}
