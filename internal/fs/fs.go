// Package fs models the local file systems of the three operating systems:
// ext2fs on Linux and the two FFS derivatives on FreeBSD and Solaris.
//
// The model keeps a real directory tree with inodes and per-file block
// lists on a simulated disk, runs all data through a dynamically sized
// buffer cache, and charges virtual time for every operation: per-KB copy
// costs between user space and the cache, per-block allocation work, disk
// time for cache misses and write-back, and — the paper's headline §7.2
// mechanism — synchronous metadata disk writes on create, unlink and mkdir
// for the FFS personalities, versus asynchronous (cache-only) metadata
// updates for ext2fs. The order-of-magnitude crtdel gap, the bonnie cache
// knee at 20 MB, and the 14 ms random-seek convergence all fall out of
// these mechanisms.
package fs

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/disk"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/osprofile"
	"repro/internal/sim"
)

// BlockSize is the file system block size in bytes.
const BlockSize = disk.BlockSize

// Stats counts file system activity.
type Stats struct {
	Creates, Unlinks, Mkdirs uint64
	Opens, Closes, Stats     uint64
	ReadCalls, WriteCalls    uint64
	BytesRead, BytesWritten  uint64
	SyncMetaWrites           uint64
	DataDiskReads            uint64
	DataDiskWrites           uint64
}

type inode struct {
	ino    int64
	dir    bool
	size   int64
	blocks []int64
	kids   map[string]*inode // directories only
}

// File is an open file descriptor with a seek offset.
type File struct {
	fs     *FileSystem
	node   *inode
	path   string
	offset int64
	closed bool
}

// FileSystem is one mounted file system instance on one disk partition.
type FileSystem struct {
	clock *sim.Clock
	d     *disk.Disk
	os    *osprofile.Profile
	cache *BufferCache

	root    *inode
	nextIno int64

	// cacheBudgetOverride, when positive, replaces the personality's
	// BufferCacheMB (e.g. a budget computed from a vm.Pool under memory
	// pressure). Set with SetCacheBudget.
	cacheBudgetOverride int64

	// Disk layout: a metadata area at the front of the partition, then
	// data blocks handed out by a bump allocator.
	metaBase     int64
	dataBase     int64
	nextData     int64
	metaAlt      int // alternates metadata write targets across the spread
	attrCache    map[string]bool
	stats        Stats
	partitionLen int64

	// phases attributes every charged duration to a Phase (see obs.go);
	// the entries always sum to the total time charged since Remake.
	phases [NumPhases]sim.Duration

	// rec, when non-nil, receives operation and disk-level spans.
	rec       *obs.Recorder
	fsTrack   obs.TrackID
	diskTrack obs.TrackID

	// cacheInj, when non-nil, applies page-steal pressure per operation
	// (see SetFaults).
	cacheInj *fault.CacheInjector
}

// New mounts a fresh file system for the given OS personality on the disk.
// The clock is shared with whatever machine drives the workload; all
// operation costs are charged to it. A personality whose file-system
// parameters cannot mount (zero cache budget) is a returned error, never
// a panic.
func New(clock *sim.Clock, d *disk.Disk, os *osprofile.Profile) (*FileSystem, error) {
	if int64(os.FS.BufferCacheMB)<<20 <= 0 {
		return nil, fmt.Errorf("fs: %s: buffer cache budget must be positive (have %d MB)",
			os, os.FS.BufferCacheMB)
	}
	f := &FileSystem{clock: clock, d: d, os: os}
	f.partitionLen = d.Blocks()
	f.Remake()
	return f, nil
}

// MustNew is New for the built-in personalities, whose parameters are
// validated at load time.
func MustNew(clock *sim.Clock, d *disk.Disk, os *osprofile.Profile) *FileSystem {
	f, err := New(clock, d, os)
	if err != nil {
		panic(err)
	}
	return f
}

// SetFaults attaches a run's fault injectors: the cache injector steals
// buffer-cache pages between operations, and the disk injector is
// forwarded to the underlying disk. Zero-value injectors detach.
func (f *FileSystem) SetFaults(inj fault.Injectors) {
	f.cacheInj = inj.Cache
	f.d.SetFaults(inj.Disk)
}

// maybeSteal draws one page-steal decision and, when it fires, shrinks
// the cache and charges the write-back of the dirty blocks it evicts —
// through flushBlock, so the phase ledger stays exact under pressure.
func (f *FileSystem) maybeSteal() {
	if f.cacheInj == nil {
		return
	}
	if target, ok := f.cacheInj.StealTarget(f.cache.Capacity()); ok {
		for _, blk := range f.cache.SetCapacity(target) {
			f.flushBlock(blk)
		}
	}
}

// Remake re-creates the file system, as the paper did between benchmarks
// (§2.2: "We create a fresh 200-megabyte file system on this second disk
// between different benchmarks").
func (f *FileSystem) Remake() {
	fsc := &f.os.FS
	cacheBytes := int64(fsc.BufferCacheMB) << 20
	if f.cacheBudgetOverride > 0 {
		cacheBytes = f.cacheBudgetOverride
	}
	dirtyBytes := int64(fsc.DirtyLimitMB) << 20
	if dirtyBytes > cacheBytes {
		dirtyBytes = cacheBytes
	}
	f.cache = NewBufferCache(cacheBytes, dirtyBytes, BlockSize)
	f.root = &inode{ino: 2, dir: true, kids: make(map[string]*inode)}
	f.nextIno = 3
	f.metaBase = 64
	f.dataBase = 4096 // leave room for the metadata area
	f.nextData = f.dataBase
	f.metaAlt = 0
	f.attrCache = make(map[string]bool)
	f.stats = Stats{}
	f.phases = [NumPhases]sim.Duration{}
}

// SetCacheBudget overrides the buffer cache capacity — for example with
// a budget computed from a vm.Pool when other processes claim memory —
// and remakes the file system with it.
func (f *FileSystem) SetCacheBudget(bytes int64) {
	if bytes <= 0 {
		panic("fs: cache budget must be positive")
	}
	f.cacheBudgetOverride = bytes
	f.Remake()
}

// OS returns the personality this file system instance models.
func (f *FileSystem) OS() *osprofile.Profile { return f.os }

// Stats returns a copy of the activity counters.
func (f *FileSystem) Stats() Stats { return f.stats }

// Cache exposes the buffer cache for inspection.
func (f *FileSystem) Cache() *BufferCache { return f.cache }

// Disk exposes the underlying disk (for metric folds and inspection).
func (f *FileSystem) Disk() *disk.Disk { return f.d }

// charge advances the shared clock, attributing the time to a phase.
func (f *FileSystem) charge(ph Phase, d sim.Duration) {
	f.clock.Advance(d)
	f.phases[ph] += d
}

// syscall charges the base system-call plus fixed per-op cost.
func (f *FileSystem) syscall() {
	f.charge(PhaseVFS, f.os.Kernel.Syscall+f.os.FS.OpFixed)
}

// perKB charges a per-KB copy cost for n bytes.
func (f *FileSystem) perKB(rate sim.Duration, n int64) {
	f.charge(PhaseCopy, sim.Duration(int64(rate)*n/1024))
}

// lookup walks the path. Paths are slash-separated and absolute within
// this file system ("/a/b/c" or "a/b/c").
func (f *FileSystem) lookup(path string) (*inode, error) {
	parts := splitPath(path)
	n := f.root
	for _, p := range parts {
		if !n.dir {
			return nil, fmt.Errorf("fs: %q: not a directory", p)
		}
		next, ok := n.kids[p]
		if !ok {
			return nil, fmt.Errorf("fs: %q: no such file or directory", path)
		}
		n = next
	}
	return n, nil
}

// lookupParent returns the parent directory and final name component.
func (f *FileSystem) lookupParent(path string) (*inode, string, error) {
	parts := splitPath(path)
	if len(parts) == 0 {
		return nil, "", fmt.Errorf("fs: empty path")
	}
	dirParts, name := parts[:len(parts)-1], parts[len(parts)-1]
	n := f.root
	for _, p := range dirParts {
		next, ok := n.kids[p]
		if !ok || !next.dir {
			return nil, "", fmt.Errorf("fs: %q: no such directory", path)
		}
		n = next
	}
	return n, name, nil
}

func splitPath(path string) []string {
	var out []string
	for _, p := range strings.Split(path, "/") {
		if p != "" && p != "." {
			out = append(out, p)
		}
	}
	return out
}

// syncMetaWrites performs n synchronous metadata disk writes.
//
// FFS clusters a directory's inodes and entries in its cylinder group, so
// creations in one directory (MAB's pattern) rewrite nearby blocks: the
// head barely moves and each write costs about one rotational latency.
// Deletions, by contrast, must also update structures away from the group
// (free maps, the far half of the personality's metadata layout), so they
// alternate targets across the seek spread — which is what makes a
// create/delete cycle (crtdel's pattern) so much more expensive than a
// create-only burst.
func (f *FileSystem) syncMetaWrites(n int, groupBase int64, far bool) {
	if n <= 0 {
		return
	}
	blocksPerCyl := f.d.Blocks() / int64(f.d.Geometry().Cylinders)
	if blocksPerCyl < 1 {
		blocksPerCyl = 1
	}
	spread := int64(f.os.FS.MetaSeekSpread) * blocksPerCyl
	for i := 0; i < n; i++ {
		target := groupBase
		if far && f.metaAlt%2 == 1 {
			target += spread
		}
		if target >= f.d.Blocks() {
			target = f.d.Blocks() - 1
		}
		f.metaAlt++
		f.chargeSpan(f.diskTrack, "meta-write", PhaseMetaSync, f.d.Access(target, f.os.FS.MetaWriteBytes, true))
		f.stats.SyncMetaWrites++
	}
}

// groupFor returns the metadata block address of the cylinder group
// serving a directory.
func (f *FileSystem) groupFor(dir *inode) int64 {
	const groups = 16
	blocksPerCyl := f.d.Blocks() / int64(f.d.Geometry().Cylinders)
	if blocksPerCyl < 1 {
		blocksPerCyl = 1
	}
	span := 4 * blocksPerCyl
	return f.metaBase + (dir.ino%groups)*span
}

// metaUpdate applies the personality's metadata policy for an operation
// in the given directory that performs n metadata writes under MetaSync.
// far selects the delete-style scatter pattern.
func (f *FileSystem) metaUpdate(n int, dir *inode, far bool) {
	switch f.os.FS.MetaPolicy {
	case osprofile.MetaSync:
		f.syncMetaWrites(n, f.groupFor(dir), far)
	case osprofile.MetaAsync:
		// Dirty the metadata in the cache; the flusher writes it long
		// after the benchmark ends. Only CPU cost, already in OpFixed.
	case osprofile.MetaOrderedAsync:
		// Deferred writes with ordering bookkeeping: small CPU cost per
		// deferred update.
		f.charge(PhaseMetaSync, sim.Duration(n)*30*sim.Microsecond)
	}
}

// Mkdir creates a directory.
func (f *FileSystem) Mkdir(path string) error {
	if done := f.opSpan("mkdir"); done != nil {
		defer done()
	}
	f.syscall()
	parent, name, err := f.lookupParent(path)
	if err != nil {
		return err
	}
	if _, exists := parent.kids[name]; exists {
		return fmt.Errorf("fs: mkdir %q: file exists", path)
	}
	parent.kids[name] = &inode{ino: f.newIno(), dir: true, kids: make(map[string]*inode)}
	f.stats.Mkdirs++
	f.metaUpdate(f.os.FS.SyncWritesPerMkdir, parent, false)
	f.attrCache[path] = true
	return nil
}

func (f *FileSystem) newIno() int64 {
	ino := f.nextIno
	f.nextIno++
	return ino
}

// Create creates (or truncates) a file and opens it.
func (f *FileSystem) Create(path string) (*File, error) {
	if done := f.opSpan("create"); done != nil {
		defer done()
	}
	f.syscall()
	parent, name, err := f.lookupParent(path)
	if err != nil {
		return nil, err
	}
	if existing, ok := parent.kids[name]; ok {
		if existing.dir {
			return nil, fmt.Errorf("fs: create %q: is a directory", path)
		}
		f.freeBlocks(existing)
		existing.size = 0
		f.stats.Creates++
		f.metaUpdate(f.os.FS.SyncWritesPerCreate, parent, false)
		return &File{fs: f, node: existing, path: path}, nil
	}
	n := &inode{ino: f.newIno()}
	parent.kids[name] = n
	f.stats.Creates++
	f.metaUpdate(f.os.FS.SyncWritesPerCreate, parent, false)
	f.attrCache[path] = true
	return &File{fs: f, node: n, path: path}, nil
}

// Open opens an existing file for reading and writing.
func (f *FileSystem) Open(path string) (*File, error) {
	f.syscall()
	n, err := f.lookup(path)
	if err != nil {
		return nil, err
	}
	if n.dir {
		return nil, fmt.Errorf("fs: open %q: is a directory", path)
	}
	f.stats.Opens++
	return &File{fs: f, node: n, path: path}, nil
}

// Unlink removes a file, invalidating its cached blocks.
func (f *FileSystem) Unlink(path string) error {
	if done := f.opSpan("unlink"); done != nil {
		defer done()
	}
	f.syscall()
	parent, name, err := f.lookupParent(path)
	if err != nil {
		return err
	}
	n, ok := parent.kids[name]
	if !ok {
		return fmt.Errorf("fs: unlink %q: no such file", path)
	}
	if n.dir {
		return fmt.Errorf("fs: unlink %q: is a directory", path)
	}
	delete(parent.kids, name)
	f.freeBlocks(n)
	f.stats.Unlinks++
	f.metaUpdate(f.os.FS.SyncWritesPerUnlink, parent, true)
	delete(f.attrCache, path)
	return nil
}

func (f *FileSystem) freeBlocks(n *inode) {
	for _, b := range n.blocks {
		f.cache.Invalidate(b)
	}
	n.blocks = nil
}

// Rename moves a file to a new path (within this file system). Under
// MetaSync both directories' metadata commits synchronously, like a
// create in the target plus an unlink in the source — rename was exactly
// as expensive as that pair on the FFS systems, which is why 1995
// editors' save-via-rename felt the same as crtdel.
func (f *FileSystem) Rename(oldPath, newPath string) error {
	if done := f.opSpan("rename"); done != nil {
		defer done()
	}
	f.syscall()
	oldParent, oldName, err := f.lookupParent(oldPath)
	if err != nil {
		return err
	}
	n, ok := oldParent.kids[oldName]
	if !ok {
		return fmt.Errorf("fs: rename %q: no such file", oldPath)
	}
	newParent, newName, err := f.lookupParent(newPath)
	if err != nil {
		return err
	}
	if existing, exists := newParent.kids[newName]; exists {
		if existing.dir {
			return fmt.Errorf("fs: rename onto directory %q", newPath)
		}
		f.freeBlocks(existing)
	}
	delete(oldParent.kids, oldName)
	newParent.kids[newName] = n
	// Target directory update is create-like (clustered); source
	// directory update is unlink-like (scattered).
	f.metaUpdate(f.os.FS.SyncWritesPerCreate, newParent, false)
	f.metaUpdate(f.os.FS.SyncWritesPerUnlink, oldParent, true)
	delete(f.attrCache, oldPath)
	f.attrCache[newPath] = true
	return nil
}

// StatInfo is the result of Stat.
type StatInfo struct {
	Ino  int64
	Dir  bool
	Size int64
}

// Stat returns a file's attributes. With the personality's separate
// attribute cache (FreeBSD, §8.1), a hit costs almost nothing; otherwise
// the inode must be consulted through the normal paths.
func (f *FileSystem) Stat(path string) (StatInfo, error) {
	if done := f.opSpan("stat"); done != nil {
		defer done()
	}
	f.stats.Stats++
	if f.os.FS.AttrCache && f.attrCache[path] {
		f.charge(PhaseVFS, f.os.Kernel.Syscall+20*sim.Microsecond)
	} else {
		f.syscall()
		// Consulting the inode copies a fraction of a block's worth of
		// metadata through the cache path.
		f.perKB(f.os.FS.ReadPerKB, 256)
		if f.os.FS.AttrCache {
			f.attrCache[path] = true
		}
	}
	n, err := f.lookup(path)
	if err != nil {
		return StatInfo{}, err
	}
	return StatInfo{Ino: n.ino, Dir: n.dir, Size: n.size}, nil
}

// List returns the sorted names in a directory (readdir).
func (f *FileSystem) List(path string) ([]string, error) {
	f.syscall()
	n, err := f.lookup(path)
	if err != nil {
		return nil, err
	}
	if !n.dir {
		return nil, fmt.Errorf("fs: list %q: not a directory", path)
	}
	names := make([]string, 0, len(n.kids))
	for name := range n.kids {
		names = append(names, name)
	}
	sort.Strings(names)
	// Reading the directory costs one block's worth of copying.
	f.perKB(f.os.FS.ReadPerKB, 512)
	return names, nil
}

// Close closes the file.
func (fl *File) Close() {
	fl.fs.charge(PhaseVFS, fl.fs.os.Kernel.Syscall)
	fl.fs.stats.Closes++
	fl.closed = true
}

// Size returns the file's current size.
func (fl *File) Size() int64 { return fl.node.size }

// Path returns the path the file was opened with.
func (fl *File) Path() string { return fl.path }

// SeekTo sets the file offset (lseek with SEEK_SET). The name avoids the
// io.Seeker signature, which this simulated descriptor deliberately does
// not implement.
func (fl *File) SeekTo(offset int64) {
	fl.fs.charge(PhaseVFS, fl.fs.os.Kernel.Syscall)
	fl.offset = offset
}

// Offset returns the current file offset.
func (fl *File) Offset() int64 { return fl.offset }

// Write writes n bytes at the current offset, extending the file as
// needed, and advances the offset.
func (fl *File) Write(n int64) {
	fl.writeAt(fl.offset, n, false)
	fl.offset += n
}

// WriteAt writes n bytes at the given offset without moving the file
// offset — bonnie's random rewrite. Random I/O pays the personality's
// block-map overhead.
func (fl *File) WriteAt(off, n int64) {
	fl.writeAt(off, n, true)
}

func (fl *File) writeAt(off, n int64, random bool) {
	if fl.closed {
		panic("fs: write on closed file")
	}
	if n <= 0 {
		panic("fs: write of non-positive length")
	}
	f := fl.fs
	if done := f.opSpan("write"); done != nil {
		defer done()
	}
	k := &f.os.Kernel
	fsc := &f.os.FS
	f.maybeSteal()
	f.charge(PhaseVFS, k.Syscall+k.ReadWriteExtra)
	if random {
		f.charge(PhaseVFS, fsc.RandomIOOverhead)
	}
	f.perKB(fsc.WritePerKB, n)
	f.stats.WriteCalls++
	f.stats.BytesWritten += uint64(n)

	end := off + n
	allocated := false
	for blkIdx := off / BlockSize; blkIdx*BlockSize < end; blkIdx++ {
		blk, isNew := fl.blockFor(blkIdx)
		allocated = allocated || isNew
		if f.cache.Lookup(blk) {
			f.cache.MarkDirty(blk)
		} else {
			for _, victim := range f.cache.Insert(blk, true) {
				f.flushBlock(victim)
			}
		}
	}
	if allocated {
		// Block allocation (bitmap search, block-map locking) is paid
		// once per allocating write call; rewrites in place skip it.
		f.charge(PhaseAlloc, fsc.AllocPerCall)
	}
	if end > fl.node.size {
		fl.node.size = end
	}
	// Write-behind throttle: beyond the dirty limit the writer is made to
	// wait for the flusher.
	if f.cache.OverDirtyLimit() {
		for _, blk := range f.cache.FlushOldestDirty() {
			f.flushBlock(blk)
		}
	}
}

// blockFor returns the disk block backing file block index i, allocating
// if the file has never reached it, and reports whether allocation
// happened (the caller charges the per-call allocation cost).
func (fl *File) blockFor(i int64) (blk int64, allocated bool) {
	f := fl.fs
	for int64(len(fl.node.blocks)) <= i {
		allocated = true
		b := f.nextData
		f.nextData++
		if f.nextData >= f.d.Blocks() {
			f.nextData = f.dataBase // wrap: model reuse of freed space
		}
		fl.node.blocks = append(fl.node.blocks, b)
	}
	return fl.node.blocks[i], allocated
}

// flushBlock charges for writing a dirty block out via the write-behind
// machinery: the flusher clusters dirty blocks into sequential runs, so
// the cost is media bandwidth at the personality's write efficiency, with
// no foreground head motion.
func (f *FileSystem) flushBlock(blk int64) {
	_ = blk
	t := f.d.StreamTransferTime(BlockSize)
	f.chargeSpan(f.diskTrack, "flush", PhaseWriteBack, sim.Duration(float64(t)/f.os.FS.SeqWriteEff))
	f.stats.DataDiskWrites++
}

// Read reads n bytes at the current offset and advances it. Reading past
// end of file reads what is there (returned count).
func (fl *File) Read(n int64) int64 {
	got := fl.readAt(fl.offset, n, false)
	fl.offset += got
	return got
}

// ReadAt reads n bytes at the given offset without moving the file
// offset — bonnie's random read. Random misses pay full disk mechanics
// (seek and rotation) rather than streaming rates.
func (fl *File) ReadAt(off, n int64) int64 {
	return fl.readAt(off, n, true)
}

func (fl *File) readAt(off, n int64, random bool) int64 {
	if fl.closed {
		panic("fs: read on closed file")
	}
	if n <= 0 {
		panic("fs: read of non-positive length")
	}
	f := fl.fs
	if done := f.opSpan("read"); done != nil {
		defer done()
	}
	k := &f.os.Kernel
	fsc := &f.os.FS
	f.maybeSteal()
	f.charge(PhaseVFS, k.Syscall+k.ReadWriteExtra)
	if random {
		f.charge(PhaseVFS, fsc.RandomIOOverhead)
	}
	if off >= fl.node.size {
		return 0
	}
	if off+n > fl.node.size {
		n = fl.node.size - off
	}
	f.perKB(fsc.ReadPerKB, n)
	f.stats.ReadCalls++
	f.stats.BytesRead += uint64(n)

	end := off + n
	for blkIdx := off / BlockSize; blkIdx*BlockSize < end; blkIdx++ {
		if int64(len(fl.node.blocks)) <= blkIdx {
			break // sparse tail
		}
		blk := fl.node.blocks[blkIdx]
		if f.cache.Lookup(blk) {
			continue
		}
		t := f.d.Access(blk, BlockSize, false)
		if !random {
			// Sequential misses run at the personality's read-ahead
			// efficiency.
			t = sim.Duration(float64(t) / fsc.SeqReadEff)
		}
		f.chargeSpan(f.diskTrack, "disk-read", PhaseDiskRead, t)
		f.stats.DataDiskReads++
		for _, victim := range f.cache.Insert(blk, false) {
			f.flushBlock(victim)
		}
	}
	return n
}

// CommitFile synchronously commits a file: its dirty data blocks go to
// disk with real head motion (the commit cannot be deferred or clustered
// with anything), plus metaWrites synchronous metadata updates (inode
// times, indirect blocks). This is what an NFS server that honours the
// spec's write-through requirement does on every write RPC (§10).
func (f *FileSystem) CommitFile(fl *File, metaWrites int) {
	if done := f.opSpan("commit"); done != nil {
		defer done()
	}
	for _, blk := range fl.node.blocks {
		if f.cache.CleanBlock(blk) {
			f.chargeSpan(f.diskTrack, "commit-write", PhaseWriteBack, f.d.Access(blk, BlockSize, true))
			f.stats.DataDiskWrites++
		}
	}
	f.syncMetaWrites(metaWrites, f.metaBase, false)
}

// SyncAll flushes every dirty block (unmount or sync(2)).
func (f *FileSystem) SyncAll() {
	for _, blk := range f.cache.FlushAll() {
		f.flushBlock(blk)
	}
}

// Exists reports whether a path resolves.
func (f *FileSystem) Exists(path string) bool {
	_, err := f.lookup(path)
	return err == nil
}
