package fs

import (
	"repro/internal/obs"
	"repro/internal/sim"
)

// Phase classifies every unit of virtual time the file system charges, so
// that a crtdel or bonnie run can be decomposed into the layers the paper
// discusses in §7: VFS entry work, data copies, block allocation,
// synchronous metadata commits, foreground disk reads, and write-behind.
// The ledger is always on — tagging a charge is one array add — which
// gives the structural identity behind `pentiumbench metrics`: the phase
// times sum exactly to the time the file system charged its clock.
type Phase int

const (
	// PhaseVFS is system-call entry, the fixed per-operation cost, path
	// and attribute work, and random-I/O block-map overhead.
	PhaseVFS Phase = iota
	// PhaseCopy is data movement between user space and the buffer cache
	// (the per-KB read/write rates).
	PhaseCopy
	// PhaseAlloc is block allocation work (bitmap search, block-map
	// locking), paid once per allocating write call.
	PhaseAlloc
	// PhaseMetaSync is synchronous metadata disk writes (FFS create,
	// unlink, mkdir) and the ordered-async bookkeeping that replaces them.
	PhaseMetaSync
	// PhaseDiskRead is foreground disk mechanics on read misses.
	PhaseDiskRead
	// PhaseWriteBack is dirty-block flushing: write-behind streaming and
	// synchronous commits.
	PhaseWriteBack
	// NumPhases sizes phase-indexed arrays.
	NumPhases
)

// String names the phase for metric keys and tables.
func (p Phase) String() string {
	switch p {
	case PhaseVFS:
		return "vfs"
	case PhaseCopy:
		return "copy"
	case PhaseAlloc:
		return "alloc"
	case PhaseMetaSync:
		return "metasync"
	case PhaseDiskRead:
		return "diskread"
	case PhaseWriteBack:
		return "writeback"
	}
	return "unknown"
}

// Observe attaches a trace recorder. The file system emits spans on an
// "fs" track for each operation and on a "disk" track for each disk-level
// charge (metadata writes, read misses, flushes). A nil recorder
// detaches; detached, the instrumentation costs one nil check per site.
func (f *FileSystem) Observe(rec *obs.Recorder) {
	f.rec = rec
	if rec != nil {
		f.fsTrack = rec.Track("fs")
		f.diskTrack = rec.Track("disk")
	}
}

// Recorder returns the attached recorder (nil when detached).
func (f *FileSystem) Recorder() *obs.Recorder { return f.rec }

// PhaseTime returns the virtual time charged to one phase since Remake.
func (f *FileSystem) PhaseTime(ph Phase) sim.Duration { return f.phases[ph] }

// PhaseBreakdown returns the full phase ledger. The entries sum exactly
// to the virtual time this file system has charged to its clock since
// Remake: every charge site is tagged, so the identity is structural, not
// approximate.
func (f *FileSystem) PhaseBreakdown() [NumPhases]sim.Duration { return f.phases }

// FoldMetrics adds the file system's activity counters and phase ledger
// into a registry under the given prefix (e.g. "fs.").
func (f *FileSystem) FoldMetrics(reg *obs.Registry, prefix string) {
	s := f.stats
	reg.Counter(prefix + "creates").Add(float64(s.Creates))
	reg.Counter(prefix + "unlinks").Add(float64(s.Unlinks))
	reg.Counter(prefix + "mkdirs").Add(float64(s.Mkdirs))
	reg.Counter(prefix + "opens").Add(float64(s.Opens))
	reg.Counter(prefix + "closes").Add(float64(s.Closes))
	reg.Counter(prefix + "stat_calls").Add(float64(s.Stats))
	reg.Counter(prefix + "read_calls").Add(float64(s.ReadCalls))
	reg.Counter(prefix + "write_calls").Add(float64(s.WriteCalls))
	reg.Counter(prefix + "bytes_read").Add(float64(s.BytesRead))
	reg.Counter(prefix + "bytes_written").Add(float64(s.BytesWritten))
	reg.Counter(prefix + "sync_meta_writes").Add(float64(s.SyncMetaWrites))
	reg.Counter(prefix + "data_disk_reads").Add(float64(s.DataDiskReads))
	reg.Counter(prefix + "data_disk_writes").Add(float64(s.DataDiskWrites))
	for ph := Phase(0); ph < NumPhases; ph++ {
		reg.Counter(prefix + "phase_us." + ph.String()).Add(f.phases[ph].Microseconds())
	}
}

// chargeSpan brackets a tagged charge with a span on the given track,
// attributing the charged microseconds as the span cost. With no recorder
// it degenerates to charge.
func (f *FileSystem) chargeSpan(track obs.TrackID, name string, ph Phase, d sim.Duration) {
	f.rec.Begin(track, name)
	f.charge(ph, d)
	f.rec.End(track, name, d.Microseconds())
}

// opSpan opens a span named for a top-level operation on the fs track and
// returns its closer, or nil when no recorder is attached. Call sites use
//
//	if done := f.opSpan("create"); done != nil { defer done() }
//
// so the disabled path neither allocates the closure nor registers the
// defer.
func (f *FileSystem) opSpan(name string) func() {
	if f.rec == nil {
		return nil
	}
	start := f.clock.Now()
	f.rec.Begin(f.fsTrack, name)
	return func() {
		f.rec.End(f.fsTrack, name, f.clock.Now().Sub(start).Microseconds())
	}
}
