package vm_test

import (
	"fmt"

	"repro/internal/vm"
)

// Example shows the §7 page trade: the buffer cache's budget is whatever
// the kernel and resident processes leave free, so a memory hog shrinks
// the file cache.
func Example() {
	pool := vm.PaperMachine(3) // 3 MB kernel
	fmt.Printf("idle: cache budget %d MB\n", pool.CacheBudget()>>20)
	pool.Claim("simulation job", 10<<20)
	fmt.Printf("busy: cache budget %d MB\n", pool.CacheBudget()>>20)
	pool.Release("simulation job")
	fmt.Printf("idle again: %d MB\n", pool.CacheBudget()>>20)
	// Output:
	// idle: cache budget 21 MB
	// busy: cache budget 11 MB
	// idle again: 21 MB
}
