package vm

import (
	"testing"
	"testing/quick"
)

func TestPaperMachineBudgetNear20MB(t *testing.T) {
	// §7: all three systems cache files up to ~20 MB of the 32 MB
	// machine. The single-user-mode footprint must leave about that much.
	for kernelMB := 2; kernelMB <= 5; kernelMB++ {
		p := PaperMachine(kernelMB)
		mb := float64(p.CacheBudget()) / (1 << 20)
		if mb < 18 || mb > 23 {
			t.Errorf("kernel %d MB: cache budget %.1f MB, want ~20", kernelMB, mb)
		}
	}
}

func TestClaimAndRelease(t *testing.T) {
	p := NewPool(32 << 20)
	before := p.CacheBudget()
	p.Claim("hog", 8<<20)
	after := p.CacheBudget()
	if before-after != 8<<20 {
		t.Fatalf("claim shrank budget by %d, want 8 MB", before-after)
	}
	p.Release("hog")
	if p.CacheBudget() != before {
		t.Fatal("release did not restore the budget")
	}
}

func TestClaimRoundsToPages(t *testing.T) {
	p := NewPool(1 << 20)
	p.Claim("odd", 1) // one byte claims one page
	cs := p.Consumers()
	if len(cs) != 1 || cs[0].Bytes != PageSize {
		t.Fatalf("Consumers = %+v, want one page", cs)
	}
}

func TestOverclaimPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("overclaim did not panic")
		}
	}()
	p := NewPool(1 << 20)
	p.Claim("hog", 2<<20)
}

func TestNegativeClaimPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative claim did not panic")
		}
	}()
	NewPool(1<<20).Claim("x", -1)
}

func TestTinyPoolPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("sub-page pool did not panic")
		}
	}()
	NewPool(100)
}

func TestConsumersSorted(t *testing.T) {
	p := NewPool(32 << 20)
	p.Claim("zeta", 1<<20)
	p.Claim("alpha", 1<<20)
	cs := p.Consumers()
	if cs[0].Name != "alpha" || cs[1].Name != "zeta" {
		t.Fatalf("Consumers not sorted: %+v", cs)
	}
}

// Property: budget + claims + reserve always equals the pool total.
func TestAccountingProperty(t *testing.T) {
	f := func(claims []uint16) bool {
		p := NewPool(64 << 20)
		for i, c := range claims {
			bytes := int64(c) * 1024
			pages := (bytes + PageSize - 1) / PageSize
			if pages > p.availablePages() {
				continue
			}
			p.Claim(string(rune('a'+i%26))+"x", bytes)
		}
		var claimed int64
		for _, c := range p.Consumers() {
			claimed += c.Bytes
		}
		return p.CacheBudget()+claimed+p.reserve*PageSize == p.TotalBytes()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
