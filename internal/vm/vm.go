// Package vm models the machine's physical memory as a page pool shared
// between the kernel, resident processes, and the unified buffer cache.
//
// §7 of the paper explains why all three systems cache files up to about
// 20 MB of the 32 MB machine: "all of the systems have a dynamically
// sized buffer cache that trades physical pages for buffer cache pages
// during intensive disk accesses." This package makes that trade
// explicit: the cache's budget is whatever the other consumers leave
// free. The A7 ablation uses it to show bonnie's cache knee moving as
// resident process memory grows.
package vm

import (
	"fmt"
	"sort"
)

// PageSize is the x86 page size in bytes.
const PageSize = 4096

// Pool is one machine's physical memory.
type Pool struct {
	totalPages int64
	// reserve is the floor of pages the VM keeps free for allocation
	// bursts (the systems' "lotsfree"-style thresholds).
	reserve   int64
	consumers map[string]int64 // pages per named consumer
}

// NewPool builds a pool of the given total memory. The paper machine has
// 32 MB.
func NewPool(totalBytes int64) *Pool {
	if totalBytes < PageSize {
		panic("vm: pool smaller than one page")
	}
	p := &Pool{
		totalPages: totalBytes / PageSize,
		consumers:  make(map[string]int64),
	}
	p.reserve = p.totalPages / 16 // ~6% kept free
	return p
}

// PaperMachine returns the 32 MB pool of tnt.stanford.edu with a typical
// single-user-mode footprint: the kernel image and data, plus init and a
// shell. What remains leaves the buffer cache almost exactly the ~20 MB
// the paper observed.
func PaperMachine(kernelMB int) *Pool {
	p := NewPool(32 << 20)
	p.Claim("kernel", int64(kernelMB)<<20)
	p.Claim("init+shell+daemons", 2<<20)
	p.Claim("page tables & buffer headers", 4<<20)
	return p
}

// TotalBytes returns the pool size in bytes.
func (p *Pool) TotalBytes() int64 { return p.totalPages * PageSize }

// Claim assigns pages to a named consumer (kernel text/data, a process
// resident set). Claiming more than is available panics: the real
// machines would page, and no benchmark in this repository models
// thrashing — a workload that needs it is outside the validated domain.
func (p *Pool) Claim(name string, bytes int64) {
	if bytes < 0 {
		panic("vm: negative claim")
	}
	pages := (bytes + PageSize - 1) / PageSize
	if pages > p.availablePages() {
		panic(fmt.Sprintf("vm: %s wants %d pages, only %d available", name, pages, p.availablePages()))
	}
	p.consumers[name] += pages
}

// Release returns a consumer's pages to the pool.
func (p *Pool) Release(name string) {
	delete(p.consumers, name)
}

func (p *Pool) claimedPages() int64 {
	var sum int64
	for _, v := range p.consumers {
		sum += v
	}
	return sum
}

func (p *Pool) availablePages() int64 {
	return p.totalPages - p.claimedPages() - p.reserve
}

// CacheBudget returns the bytes the dynamically sized buffer cache may
// grow into: everything not claimed or reserved.
func (p *Pool) CacheBudget() int64 {
	a := p.availablePages()
	if a < 0 {
		a = 0
	}
	return a * PageSize
}

// Consumers returns the named claims in bytes, sorted by name.
func (p *Pool) Consumers() []Consumer {
	out := make([]Consumer, 0, len(p.consumers))
	for name, pages := range p.consumers {
		out = append(out, Consumer{Name: name, Bytes: pages * PageSize})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Consumer is one named memory claim.
type Consumer struct {
	Name  string
	Bytes int64
}
