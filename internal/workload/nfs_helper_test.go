package workload

import (
	"testing"

	"repro/internal/disk"
	"repro/internal/netstack"
	"repro/internal/nfs"
	"repro/internal/osprofile"
	"repro/internal/sim"
)

// replayOverNFS runs a trace through an NFS mount of a Linux server from
// a Solaris client.
func replayOverNFS(t *testing.T, clock *sim.Clock, tr *Trace) Stats {
	t.Helper()
	server, err := nfs.NewServer(osprofile.Linux128(), disk.QuantumEmpire2100(), 1)
	if err != nil {
		t.Fatal(err)
	}
	m, err := nfs.NewMount(clock, osprofile.Solaris24(), server, netstack.Ethernet10(), nfs.MountOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return Replay(m, tr)
}
