package workload

import "testing"

// FuzzParse exercises the trace parser with arbitrary input: it must
// either return an error or a trace that replays without panicking on a
// null VFS-free walk (we only validate structural invariants here).
func FuzzParse(f *testing.F) {
	f.Add("mkdir /d\ncreate /d/f 4K\n")
	f.Add("repeat 3\n  create /x%i 1K\nend\n")
	f.Add("rename /a /b\nsync\n# comment\n")
	f.Add("repeat 2\nrepeat 2\nstat /s\nend\nend\n")
	f.Fuzz(func(t *testing.T, src string) {
		tr, err := Parse("fuzz", src)
		if err != nil {
			return
		}
		// Structural invariants: repeats balanced, counts positive,
		// matchEnd total.
		depth := 0
		for _, op := range tr.Ops {
			switch op.Kind {
			case opRepeat:
				if op.Count <= 0 {
					t.Fatalf("repeat with count %d accepted", op.Count)
				}
				depth++
			case opEnd:
				depth--
				if depth < 0 {
					t.Fatal("unbalanced end accepted")
				}
			case OpCreate, OpAppend:
				if op.Bytes < 0 {
					t.Fatal("negative size accepted")
				}
			}
		}
		if depth != 0 {
			t.Fatal("unbalanced repeat accepted")
		}
	})
}
