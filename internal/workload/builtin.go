package workload

import "fmt"

// Builtin returns a named built-in trace, or an error listing the
// available names.
func Builtin(name string) (*Trace, error) {
	text, ok := builtins[name]
	if !ok {
		return nil, fmt.Errorf("workload: no builtin trace %q (have: compile, mailspool, tmpfiles)", name)
	}
	return Parse(name, text)
}

// BuiltinNames lists the bundled traces.
func BuiltinNames() []string { return []string{"compile", "mailspool", "tmpfiles"} }

var builtins = map[string]string{
	// compile mimics an edit-compile cycle over a small project: read
	// sources and headers, write objects, relink.
	"compile": `# edit-compile-link cycle
mkdir /proj
mkdir /proj/src
mkdir /proj/obj
repeat 40
  create /proj/src/f%i.c 9K
end
create /proj/src/common.h 22K
repeat 40
  read /proj/src/f%i.c
  read /proj/src/common.h
  create /proj/obj/f%i.o 12K
end
repeat 40
  read /proj/obj/f%i.o
end
create /proj/a.out 600K
`,

	// mailspool mimics a mail/news spool: many small files created,
	// scanned, and expired in one flat directory — the metadata-heavy
	// workload where ext2's async policy dominates (§7.2).
	"mailspool": `# spool churn: deliveries, a scan, expiries
mkdir /spool
repeat 150
  create /spool/msg%i 3K
end
list /spool
repeat 150
  stat /spool/msg%i
end
repeat 150
  read /spool/msg%i
end
repeat 75
  unlink /spool/msg%i
end
`,

	// tmpfiles is crtdel writ large: compiler temporary files.
	"tmpfiles": `# temporary-file churn
mkdir /tmp2
repeat 60
  create /tmp2/t%i 16K
  read /tmp2/t%i
  unlink /tmp2/t%i
end
`,
}
