// Package workload implements a small trace language and replayer so that
// arbitrary file system workloads — not just the paper's benchmarks — can
// be timed against the three operating-system models. This is the tool a
// 1996 reader would have wanted next: "the paper's workloads are not
// mine; what would *my* job cost on each system?"
//
// A trace is a text file, one operation per line:
//
//	# comment
//	mkdir  <path>
//	create <path> <bytes>     create (or truncate) and write, then close
//	read   <path>             open, read the whole file, close
//	append <path> <bytes>     open, write at the end, close
//	stat   <path>
//	list   <path>
//	unlink <path>
//	rename <old> <new>
//	sync                      flush everything (local file systems only)
//	repeat <n>                loop the block until the matching "end"
//	end
//
// Sizes accept K/M suffixes ("64K", "2M"). Repeats nest. The "%i" token
// in a path expands to the innermost loop index, so traces can generate
// many files:
//
//	repeat 100
//	  create /spool/msg%i 4K
//	end
package workload

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/fs"
)

// OpKind enumerates trace operations.
type OpKind int

// The trace operations.
const (
	OpMkdir OpKind = iota
	OpCreate
	OpRead
	OpAppend
	OpStat
	OpList
	OpUnlink
	OpRename
	OpSync
	opRepeat
	opEnd
)

// Op is one parsed trace line.
type Op struct {
	Kind  OpKind
	Path  string
	Path2 string // rename target
	Bytes int64
	Count int // repeat count
	Line  int // source line, for errors
}

// Trace is a parsed workload.
type Trace struct {
	// Name identifies the trace (file name or builtin name).
	Name string
	// Ops is the flat operation list with repeat/end markers.
	Ops []Op
}

// Parse reads a trace from text.
func Parse(name, text string) (*Trace, error) {
	t := &Trace{Name: name}
	depth := 0
	for lineNo, raw := range strings.Split(text, "\n") {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		op := Op{Line: lineNo + 1}
		switch fields[0] {
		case "mkdir", "read", "stat", "list", "unlink":
			if len(fields) != 2 {
				return nil, fmt.Errorf("%s:%d: %s needs a path", name, op.Line, fields[0])
			}
			op.Kind = map[string]OpKind{
				"mkdir": OpMkdir, "read": OpRead, "stat": OpStat,
				"list": OpList, "unlink": OpUnlink,
			}[fields[0]]
			op.Path = fields[1]
		case "create", "append":
			if len(fields) != 3 {
				return nil, fmt.Errorf("%s:%d: %s needs a path and size", name, op.Line, fields[0])
			}
			n, err := parseSize(fields[2])
			if err != nil {
				return nil, fmt.Errorf("%s:%d: %v", name, op.Line, err)
			}
			op.Kind = OpCreate
			if fields[0] == "append" {
				op.Kind = OpAppend
			}
			op.Path, op.Bytes = fields[1], n
		case "rename":
			if len(fields) != 3 {
				return nil, fmt.Errorf("%s:%d: rename needs two paths", name, op.Line)
			}
			op.Kind, op.Path, op.Path2 = OpRename, fields[1], fields[2]
		case "sync":
			op.Kind = OpSync
		case "repeat":
			if len(fields) != 2 {
				return nil, fmt.Errorf("%s:%d: repeat needs a count", name, op.Line)
			}
			n, err := strconv.Atoi(fields[1])
			if err != nil || n <= 0 {
				return nil, fmt.Errorf("%s:%d: bad repeat count %q", name, op.Line, fields[1])
			}
			op.Kind, op.Count = opRepeat, n
			depth++
		case "end":
			if depth == 0 {
				return nil, fmt.Errorf("%s:%d: end without repeat", name, op.Line)
			}
			op.Kind = opEnd
			depth--
		default:
			return nil, fmt.Errorf("%s:%d: unknown operation %q", name, op.Line, fields[0])
		}
		t.Ops = append(t.Ops, op)
	}
	if depth != 0 {
		return nil, fmt.Errorf("%s: %d unclosed repeat block(s)", name, depth)
	}
	return t, nil
}

func parseSize(s string) (int64, error) {
	mult := int64(1)
	switch {
	case strings.HasSuffix(s, "K"), strings.HasSuffix(s, "k"):
		mult, s = 1<<10, s[:len(s)-1]
	case strings.HasSuffix(s, "M"), strings.HasSuffix(s, "m"):
		mult, s = 1<<20, s[:len(s)-1]
	}
	n, err := strconv.ParseInt(s, 10, 64)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("bad size %q", s)
	}
	return n * mult, nil
}

// Stats summarises a replay.
type Stats struct {
	Ops          int
	BytesWritten int64
	BytesRead    int64
	Errors       int
}

// Syncer is the optional flush capability (local file systems have it;
// NFS mounts are write-through and ignore sync).
type Syncer interface{ SyncAll() }

// Replay executes the trace against a file system. Missing files on
// read/stat/unlink count as errors but do not stop the replay (traces are
// workloads, not tests). It returns the operation statistics; the caller
// times the run with the clock it gave the VFS.
func Replay(v fs.VFS, t *Trace) Stats {
	var st Stats
	replayRange(v, t.Ops, 0, len(t.Ops), 0, &st)
	return st
}

// replayRange executes ops[from:to] with the given loop index.
func replayRange(v fs.VFS, ops []Op, from, to, idx int, st *Stats) {
	for i := from; i < to; i++ {
		op := ops[i]
		switch op.Kind {
		case opRepeat:
			body := i + 1
			end := matchEnd(ops, i)
			for n := 0; n < op.Count; n++ {
				replayRange(v, ops, body, end, n, st)
			}
			i = end
			continue
		case opEnd:
			continue
		}
		st.Ops++
		path := strings.ReplaceAll(op.Path, "%i", strconv.Itoa(idx))
		switch op.Kind {
		case OpMkdir:
			if err := v.Mkdir(path); err != nil {
				st.Errors++
			}
		case OpCreate:
			h, err := v.Create(path)
			if err != nil {
				st.Errors++
				continue
			}
			if op.Bytes > 0 {
				h.Write(op.Bytes)
				st.BytesWritten += op.Bytes
			}
			h.Close()
		case OpAppend:
			h, err := v.Open(path)
			if err != nil {
				st.Errors++
				continue
			}
			h.SeekTo(h.Size())
			h.Write(op.Bytes)
			st.BytesWritten += op.Bytes
			h.Close()
		case OpRead:
			h, err := v.Open(path)
			if err != nil {
				st.Errors++
				continue
			}
			for {
				got := h.Read(64 << 10)
				st.BytesRead += got
				if got == 0 {
					break
				}
			}
			h.Close()
		case OpStat:
			if _, err := v.Stat(path); err != nil {
				st.Errors++
			}
		case OpList:
			if _, err := v.List(path); err != nil {
				st.Errors++
			}
		case OpUnlink:
			if err := v.Unlink(path); err != nil {
				st.Errors++
			}
		case OpRename:
			path2 := strings.ReplaceAll(op.Path2, "%i", strconv.Itoa(idx))
			if err := v.Rename(path, path2); err != nil {
				st.Errors++
			}
		case OpSync:
			if s, ok := v.(Syncer); ok {
				s.SyncAll()
			}
		}
	}
}

// matchEnd returns the index of the end matching the repeat at i.
func matchEnd(ops []Op, i int) int {
	depth := 0
	for j := i; j < len(ops); j++ {
		switch ops[j].Kind {
		case opRepeat:
			depth++
		case opEnd:
			depth--
			if depth == 0 {
				return j
			}
		}
	}
	panic("workload: unbalanced repeat survived parsing")
}
