package workload_test

import (
	"fmt"

	"repro/internal/disk"
	"repro/internal/fs"
	"repro/internal/osprofile"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Example writes a tiny trace and times it on two systems, showing the
// replayer's purpose: answering "what would my workload cost on each?"
func Example() {
	trace, err := workload.Parse("churn", `
mkdir /work
repeat 20
  create /work/f%i 8K
end
repeat 20
  read /work/f%i
  unlink /work/f%i
end
`)
	if err != nil {
		panic(err)
	}

	for _, p := range []*osprofile.Profile{osprofile.Linux128(), osprofile.Solaris24()} {
		clock := &sim.Clock{}
		v := fs.MustNew(clock, disk.MustNew(disk.HP3725(), sim.NewRNG(1)), p).AsVFS()
		st := workload.Replay(v, trace)
		fmt.Printf("%s: %d ops, %d errors, %.0f ms\n",
			p, st.Ops, st.Errors, clock.Now().Sub(0).Milliseconds())
	}
	// Output:
	// Linux 1.2.8: 61 ops, 0 errors, 65 ms
	// Solaris 2.4: 61 ops, 0 errors, 783 ms
}
