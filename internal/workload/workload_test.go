package workload

import (
	"strings"
	"testing"

	"repro/internal/disk"
	"repro/internal/fs"
	"repro/internal/osprofile"
	"repro/internal/sim"
)

func newVFS(p *osprofile.Profile) (*sim.Clock, fs.VFS) {
	clock := &sim.Clock{}
	d := disk.MustNew(disk.HP3725(), sim.NewRNG(1))
	return clock, fs.MustNew(clock, d, p).AsVFS()
}

func TestParseBasics(t *testing.T) {
	tr, err := Parse("t", `
# a comment
mkdir /d
create /d/f 4K
read /d/f
append /d/f 1M
stat /d/f
list /d
unlink /d/f
sync
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Ops) != 8 {
		t.Fatalf("parsed %d ops, want 8", len(tr.Ops))
	}
	if tr.Ops[1].Bytes != 4<<10 {
		t.Errorf("4K parsed as %d", tr.Ops[1].Bytes)
	}
	if tr.Ops[3].Bytes != 1<<20 {
		t.Errorf("1M parsed as %d", tr.Ops[3].Bytes)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"frobnicate /x",
		"mkdir",
		"create /f",
		"create /f 4X4",
		"repeat zero\nend",
		"repeat 3\nmkdir /d",
		"end",
		"repeat 0\nend",
	}
	for _, src := range cases {
		if _, err := Parse("bad", src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestRepeatExpansion(t *testing.T) {
	_, v := newVFS(osprofile.Linux128())
	tr, err := Parse("t", `
mkdir /d
repeat 10
  create /d/f%i 1K
end
list /d
`)
	if err != nil {
		t.Fatal(err)
	}
	st := Replay(v, tr)
	if st.Errors != 0 {
		t.Fatalf("replay had %d errors", st.Errors)
	}
	if st.Ops != 1+10+1 {
		t.Fatalf("ops = %d, want 12", st.Ops)
	}
	names, err := v.List("/d")
	if err != nil || len(names) != 10 {
		t.Fatalf("List = %v (%v), want 10 files", names, err)
	}
}

func TestNestedRepeats(t *testing.T) {
	_, v := newVFS(osprofile.Linux128())
	tr, err := Parse("t", `
mkdir /d
repeat 3
  mkdir /d/sub%i
  repeat 4
    create /d/sub%i/f%i 1K
  end
end
`)
	if err != nil {
		t.Fatal(err)
	}
	st := Replay(v, tr)
	// Inner %i shadows the outer one: files land in the dir whose index
	// matches the inner loop only when it coincides; either way, 12
	// creates run. Errors occur when sub%i (inner idx) does not exist.
	if st.Ops != 1+3+12 {
		t.Fatalf("ops = %d, want 16", st.Ops)
	}
}

func TestReplayCountsBytes(t *testing.T) {
	_, v := newVFS(osprofile.FreeBSD205())
	tr, _ := Parse("t", "create /f 64K\nread /f\nappend /f 8K\n")
	st := Replay(v, tr)
	if st.BytesWritten != 64<<10+8<<10 {
		t.Errorf("BytesWritten = %d", st.BytesWritten)
	}
	if st.BytesRead != 64<<10 {
		t.Errorf("BytesRead = %d", st.BytesRead)
	}
}

func TestReplayToleratesErrors(t *testing.T) {
	_, v := newVFS(osprofile.Solaris24())
	tr, _ := Parse("t", "read /missing\nstat /missing\nunlink /missing\nlist /nodir\nmkdir /a/b/c\nappend /missing 1K\ncreate /nodir/f 1K\n")
	st := Replay(v, tr)
	if st.Errors != 7 {
		t.Fatalf("errors = %d, want 7", st.Errors)
	}
}

func TestSyncOp(t *testing.T) {
	clock, v := newVFS(osprofile.Linux128())
	tr, _ := Parse("t", "create /f 2M\n")
	Replay(v, tr)
	before := clock.Now()
	tr2, _ := Parse("t", "sync\n")
	Replay(v, tr2)
	if clock.Now() == before {
		t.Fatal("sync of dirty data should cost time")
	}
}

func TestBuiltinsParse(t *testing.T) {
	for _, name := range BuiltinNames() {
		tr, err := Builtin(name)
		if err != nil {
			t.Errorf("builtin %s: %v", name, err)
			continue
		}
		if len(tr.Ops) == 0 {
			t.Errorf("builtin %s is empty", name)
		}
	}
	if _, err := Builtin("nope"); err == nil {
		t.Error("unknown builtin should error")
	}
}

func TestBuiltinsReplayCleanly(t *testing.T) {
	for _, name := range BuiltinNames() {
		for _, p := range osprofile.Paper() {
			_, v := newVFS(p)
			tr, _ := Builtin(name)
			st := Replay(v, tr)
			if st.Errors != 0 {
				t.Errorf("builtin %s on %s: %d errors", name, p, st.Errors)
			}
		}
	}
}

func TestMailspoolShowsMetadataGap(t *testing.T) {
	// The spool-churn trace is metadata-bound, so ext2 should crush FFS,
	// mirroring Figure 12 on a different workload.
	elapsed := func(p *osprofile.Profile) sim.Duration {
		clock, v := newVFS(p)
		tr, _ := Builtin("mailspool")
		start := clock.Now()
		Replay(v, tr)
		return clock.Now().Sub(start)
	}
	linux := elapsed(osprofile.Linux128())
	fbsd := elapsed(osprofile.FreeBSD205())
	if fbsd < 5*linux {
		t.Errorf("mailspool: FreeBSD %v not ≫ Linux %v", fbsd, linux)
	}
}

func TestReplayOverNFSMount(t *testing.T) {
	// Traces run over NFS too (the Syncer capability is simply absent).
	tr, _ := Builtin("tmpfiles")
	clock := &sim.Clock{}
	// Reuse the bench helper indirectly: build a mount by hand.
	// (A light copy of examples/nfslab's setup.)
	st := replayOverNFS(t, clock, tr)
	if st.Errors != 0 {
		t.Fatalf("NFS replay errors: %d", st.Errors)
	}
	if clock.Now() == 0 {
		t.Fatal("NFS replay cost no time")
	}
}

func TestParseSizePlain(t *testing.T) {
	n, err := parseSize("12345")
	if err != nil || n != 12345 {
		t.Fatalf("parseSize plain: %v %v", n, err)
	}
	if _, err := parseSize("-3"); err == nil {
		t.Fatal("negative size accepted")
	}
}

func TestTraceRoundTripThroughStrings(t *testing.T) {
	// A trace with every construct parses identically when re-fed.
	src := strings.TrimSpace(builtins["compile"])
	a, err := Parse("a", src)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Parse("b", src)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Ops) != len(b.Ops) {
		t.Fatal("parse not stable")
	}
}

func TestRenameOp(t *testing.T) {
	_, v := newVFS(osprofile.Solaris24())
	tr, err := Parse("t", "create /a 4K\nrename /a /b\nread /b\nrename /missing /x\n")
	if err != nil {
		t.Fatal(err)
	}
	st := Replay(v, tr)
	if st.Errors != 1 {
		t.Fatalf("errors = %d, want 1 (the missing rename)", st.Errors)
	}
	if _, err := v.Stat("/b"); err != nil {
		t.Fatal("rename did not happen through the trace")
	}
}

func TestRenameParseErrors(t *testing.T) {
	if _, err := Parse("t", "rename /a\n"); err == nil {
		t.Fatal("rename with one path accepted")
	}
}

func TestRenameWithLoopIndex(t *testing.T) {
	_, v := newVFS(osprofile.Linux128())
	tr, _ := Parse("t", "mkdir /d\nrepeat 5\ncreate /d/tmp%i 1K\nrename /d/tmp%i /d/final%i\nend\n")
	st := Replay(v, tr)
	if st.Errors != 0 {
		t.Fatalf("errors = %d", st.Errors)
	}
	names, _ := v.List("/d")
	if len(names) != 5 || names[0] != "final0" {
		t.Fatalf("List = %v", names)
	}
}
