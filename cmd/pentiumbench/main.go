// Command pentiumbench reproduces the tables and figures of Lai & Baker,
// "A Performance Comparison of UNIX Operating Systems on the Pentium"
// (USENIX 1996) on the simulated platform.
//
// Usage:
//
//	pentiumbench list                 # show all experiments
//	pentiumbench run all              # run everything, render to stdout
//	pentiumbench run T2 F1 F12        # run selected exhibits
//	pentiumbench csv F13              # emit CSV for external plotting
//	pentiumbench svg all -out figures # write SVG figures
//	pentiumbench check                # evaluate every paper claim
//	pentiumbench sensitivity          # claims under perturbed calibration
//	pentiumbench replay mailspool     # time a workload trace per system
//	pentiumbench latency              # lmbench-style probes
//	pentiumbench trace                # annotated kernel timeline (-procs N)
//	pentiumbench trace F1 -format=chrome > f1.json   # Perfetto-loadable trace
//	pentiumbench metrics F1 F12       # per-phase cycle-attribution tables
//	pentiumbench experiments          # regenerate EXPERIMENTS.md
//	pentiumbench notes                # §11 qualitative findings
//	pentiumbench platform             # the modelled hardware (Table 1)
//
// Flags:
//
//	-seed N      master seed (default 1; EXPERIMENTS.md uses 1)
//	-runs N      repetitions per benchmark (default 20, as in the paper)
//	-future      additionally benchmark the §13 "future work" systems
//	-out DIR     svg output directory
//	-eps F       sensitivity perturbation (default 0.15)
//	-trials N    sensitivity replicas (default 5)
//	-j N         worker pool size for run/csv/svg/experiments/html/trace/
//	             metrics (default GOMAXPROCS; -j 1 is strictly serial;
//	             output is bit-identical at every N)
//	-procs N     trace: token-ring size (default 3); metrics/trace <ids>:
//	             F1 probe process count (default 8)
//	-format F    trace <ids>: chrome (default, Perfetto JSON) or text
//	-stats       print runner statistics (jobs, memo hits, wall time,
//	             slowest experiments) to stderr after running
//	-cpuprofile F  write a pprof CPU profile of the command to F
//	-memprofile F  write a pprof heap profile (post-GC, at exit) to F
//
// All logic lives in internal/cli; this is a shim.
package main

import (
	"os"

	"repro/internal/cli"
)

func main() {
	os.Exit(cli.NewApp(os.Stdout, os.Stderr).Execute(os.Args[1:]))
}
